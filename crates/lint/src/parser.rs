//! Item-level parsing on top of the [`crate::lexer`] token stream.
//!
//! Two extractions feed the workspace-level rules:
//!
//! * [`crate_refs`] — every `emblookup_*::` path mentioned in non-test
//!   code, with its line. The L005 layering pass checks these against the
//!   declared layer DAG (the Cargo.toml side is handled by
//!   [`crate::cargo`]).
//! * [`public_items`] — a normalized snapshot of a file's `pub` surface
//!   (functions, structs with their public fields, enums with variants,
//!   traits with their methods, trait impls, re-exports, exported
//!   macros), the raw material of the L006 `API.lock` snapshot.
//!
//! The parser is a tolerant recursive descent over *significant* tokens
//! (comments skipped): it understands item structure, visibility,
//! generics and bodies well enough to recover signatures, and degrades
//! to balanced-delimiter skipping on anything it does not model (macro
//! invocations at item position, `extern` blocks, …). `#[cfg(test)]`
//! regions are excluded via the [`crate::engine::SourceFile`] test map.

use crate::engine::SourceFile;
use crate::lexer::TokenKind;

/// A reference to another workspace crate in non-test code:
/// `use emblookup_kg::…` or an inline `emblookup_kg::Candidate` path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateRef {
    /// Crate ident in underscore form (`emblookup_kg`).
    pub krate: String,
    /// 1-based line of the reference.
    pub line: u32,
}

/// One public item of a file, normalized for the `API.lock` snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiItem {
    /// Inline-module chain inside the file (`""` at the top level,
    /// `"detail::impls"` for nested inline mods).
    pub module: String,
    /// Normalized signature, e.g.
    /// `pub fn build(encoder: E, kg: &KnowledgeGraph) -> Self`.
    pub signature: String,
    /// 1-based line where the item starts.
    pub line: u32,
}

/// Extracts every `emblookup_*::` crate reference outside test regions.
pub fn crate_refs(sf: &SourceFile) -> Vec<CrateRef> {
    let toks = sf.tokens();
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut out = Vec::new();
    for (s, &i) in sig.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || !t.text.starts_with("emblookup_") || sf.in_test(i) {
            continue;
        }
        let colon2 = sig.get(s + 1).map(|&j| toks[j].text.as_str()) == Some(":")
            && sig.get(s + 2).map(|&j| toks[j].text.as_str()) == Some(":");
        // `use emblookup_obs;` (whole-crate import) also counts
        let bare_use = sig.get(s + 1).map(|&j| toks[j].text.as_str()) == Some(";")
            && s >= 1
            && toks[sig[s - 1]].text == "use";
        if colon2 || bare_use {
            out.push(CrateRef { krate: t.text.clone(), line: t.line });
        }
    }
    out
}

/// Workspace-crate imports visible in a file — the raw material of
/// bare-name and `Type::method` call resolution in the call graph
/// ([`crate::callgraph`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ImportMap {
    /// Imported name (post-`as` alias) → crate ident in underscore form
    /// (`Candidate → emblookup_kg`). Module imports count too
    /// (`use emblookup_ann::flat;` maps `flat → emblookup_ann`).
    pub names: std::collections::BTreeMap<String, String>,
    /// Crates glob-imported via `use emblookup_x::…::*;`.
    pub globs: Vec<String>,
}

/// Extracts every `use emblookup_*::…` import, resolving the leaf names
/// (including `{a, b as c}` groups and `*` globs) to their source crate.
pub fn use_imports(sf: &SourceFile) -> ImportMap {
    let toks = sf.tokens();
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let txt = |s: usize| sig.get(s).map(|&j| toks[j].text.as_str()).unwrap_or("");
    let is_ident = |s: usize| sig.get(s).is_some_and(|&j| toks[j].kind == TokenKind::Ident);
    let mut map = ImportMap::default();
    let mut s = 0usize;
    while s < sig.len() {
        if txt(s) != "use" || !txt(s + 1).starts_with("emblookup_") {
            s += 1;
            continue;
        }
        let krate = txt(s + 1).to_string();
        // walk the use tree to the terminating `;`, recording leaf names
        let mut last_ident: Option<String> = None;
        let mut k = s + 2;
        while k < sig.len() && txt(k) != ";" {
            match txt(k) {
                "as" => {
                    last_ident = Some(txt(k + 1).to_string());
                    k += 2;
                    continue;
                }
                "*" => {
                    if !map.globs.contains(&krate) {
                        map.globs.push(krate.clone());
                    }
                    last_ident = None;
                }
                "," | "{" | "}" => {
                    if let Some(n) = last_ident.take() {
                        map.names.insert(n, krate.clone());
                    }
                }
                t if is_ident(k) => last_ident = Some(t.to_string()),
                _ => {}
            }
            k += 1;
        }
        if let Some(n) = last_ident.take() {
            map.names.insert(n, krate.clone());
        }
        s = k + 1;
    }
    map
}

/// Tolerant item parser: cursor over significant-token indices.
struct Parser<'a> {
    sf: &'a SourceFile,
    /// Indices into `sf.tokens()` of non-comment tokens.
    sig: Vec<usize>,
    /// Cursor into `sig`.
    i: usize,
    out: Vec<ApiItem>,
}

/// Extracts the file's public items. `module` paths are the inline-mod
/// chain only; the caller prefixes the file-level module path.
pub fn public_items(sf: &SourceFile) -> Vec<ApiItem> {
    let toks = sf.tokens();
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut p = Parser { sf, sig, i: 0, out: Vec::new() };
    let mut mods = Vec::new();
    p.scope(&mut mods, false);
    p.out
}

/// Joins normalized signature fragments with Rust-ish spacing. Only
/// determinism matters for the lockfile; the rules below just keep the
/// output readable (`fn f(x: u32) -> Vec<T>`, `&'a str`).
fn join(parts: &[String]) -> String {
    let mut s = String::new();
    for (n, p) in parts.iter().enumerate() {
        if n > 0 {
            let prev = parts[n - 1].as_str();
            let glue = matches!(
                p.as_str(),
                ")" | "]" | "," | ";" | "?" | "." | "::" | ":" | "<" | ">" | "("
            ) || matches!(prev, "(" | "[" | "::" | "." | "#" | "!" | "&" | "<");
            if !glue {
                s.push(' ');
            }
        }
        s.push_str(p);
    }
    s
}

/// Merges adjacent punctuation into compound operators (`::`, `->`,
/// `=>`) so `join` can space them as units.
fn merge_ops(raw: Vec<String>) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(raw.len());
    for t in raw {
        let merged = match (out.last().map(String::as_str), t.as_str()) {
            (Some(":"), ":") => Some("::"),
            (Some("-"), ">") => Some("->"),
            (Some("="), ">") => Some("=>"),
            _ => None,
        };
        match merged {
            Some(m) => {
                out.pop();
                out.push(m.to_string());
            }
            None => out.push(t),
        }
    }
    out
}

impl<'a> Parser<'a> {
    fn tok_idx(&self) -> Option<usize> {
        self.sig.get(self.i).copied()
    }

    fn text_at(&self, n: usize) -> &str {
        match self.sig.get(self.i + n) {
            Some(&j) => &self.sf.tokens()[j].text,
            None => "",
        }
    }

    fn text(&self) -> &str {
        self.text_at(0)
    }

    fn line(&self) -> u32 {
        match self.sig.get(self.i) {
            Some(&j) => self.sf.tokens()[j].line,
            None => 0,
        }
    }

    fn at_end(&self) -> bool {
        self.i >= self.sig.len()
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    /// Consumes the current token into `buf` (if given) and advances.
    fn take(&mut self, buf: Option<&mut Vec<String>>) {
        if let Some(b) = buf {
            b.push(self.text().to_string());
        }
        self.bump();
    }

    /// Skips a balanced delimiter group starting at the current `open`
    /// token, collecting into `buf` when given.
    fn skip_balanced(&mut self, open: &str, close: &str, mut buf: Option<&mut Vec<String>>) {
        let mut depth = 0i32;
        while !self.at_end() {
            let t = self.text().to_string();
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
            }
            self.take(buf.as_deref_mut());
            if depth == 0 {
                return;
            }
        }
    }

    /// Skips `#[…]` attributes, returning the idents seen inside them.
    fn skip_attrs(&mut self) -> Vec<String> {
        let mut idents = Vec::new();
        while self.text() == "#" && (self.text_at(1) == "[" || self.text_at(1) == "!") {
            self.bump(); // '#'
            if self.text() == "!" {
                self.bump(); // inner attribute '#!['
            }
            if self.text() != "[" {
                break;
            }
            let mut depth = 0i32;
            while !self.at_end() {
                let t = self.text();
                if t == "[" {
                    depth += 1;
                } else if t == "]" {
                    depth -= 1;
                } else if let Some(&j) = self.sig.get(self.i) {
                    if self.sf.tokens()[j].kind == TokenKind::Ident {
                        idents.push(t.to_string());
                    }
                }
                self.bump();
                if depth == 0 {
                    break;
                }
            }
        }
        idents
    }

    /// Generic recovery: consume to a top-level `;` or past one balanced
    /// `{…}` block, whichever comes first.
    fn skip_item(&mut self) {
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while !self.at_end() {
            match self.text() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" if paren <= 0 && bracket <= 0 => {
                    self.skip_balanced("{", "}", None);
                    return;
                }
                ";" if paren <= 0 && bracket <= 0 => {
                    self.bump();
                    return;
                }
                "}" if paren <= 0 && bracket <= 0 => return, // scope end: caller handles
                _ => {}
            }
            self.bump();
        }
    }

    fn record(&mut self, mods: &[String], signature: String, line: u32) {
        self.out.push(ApiItem { module: mods.join("::"), signature, line });
    }

    /// Parses items until EOF or (when `stop_at_brace`) the scope's
    /// closing `}` (left unconsumed).
    fn scope(&mut self, mods: &mut Vec<String>, stop_at_brace: bool) {
        while !self.at_end() {
            if self.text() == "}" && stop_at_brace {
                return;
            }
            let before = self.i;
            self.item(mods);
            if self.i == before {
                self.bump(); // never stall on unmodeled input
            }
        }
    }

    /// Collects signature fragments until a top-level `{` or `;`
    /// (unconsumed), tracking `()`/`[]` depth and generic `<>` depth
    /// (`->`-arrows do not close generics).
    fn sig_until_body(&mut self, buf: &mut Vec<String>) {
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut angle = 0i32;
        while !self.at_end() {
            let t = self.text();
            match t {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "<" => angle += 1,
                ">" if buf.last().map(String::as_str) != Some("-")
                    && buf.last().map(String::as_str) != Some("=") =>
                {
                    angle -= 1;
                }
                "{" | ";" if paren <= 0 && bracket <= 0 && angle <= 0 => return,
                "}" if paren <= 0 && bracket <= 0 => return, // malformed: bail at scope end
                _ => {}
            }
            self.take(Some(buf));
        }
    }

    /// One item at the current position.
    fn item(&mut self, mods: &mut Vec<String>) {
        let Some(start_idx) = self.tok_idx() else { return };
        let in_test = self.sf.in_test(start_idx);
        let attrs = self.skip_attrs();
        let exported_macro = attrs.iter().any(|a| a == "macro_export");

        // visibility: `pub` is public, `pub(crate)` and friends are not
        let mut is_pub = false;
        if self.text() == "pub" {
            if self.text_at(1) == "(" {
                self.bump();
                self.skip_balanced("(", ")", None);
            } else {
                is_pub = true;
                self.bump();
            }
        }

        // leading modifiers (`unsafe fn`, `const fn`, `extern "C" fn`,
        // `unsafe trait`, …) — collected into the signature
        let mut prefix: Vec<String> = Vec::new();
        loop {
            match self.text() {
                "unsafe" | "async" => self.take(Some(&mut prefix)),
                "const" if self.text_at(1) == "fn" => self.take(Some(&mut prefix)),
                "extern" if self.text_at(1).starts_with('"') => {
                    self.take(Some(&mut prefix));
                    self.take(Some(&mut prefix));
                }
                _ => break,
            }
        }

        match self.text() {
            "mod" => self.item_mod(mods, is_pub, in_test),
            "use" => {
                let line = self.line();
                let mut buf = Vec::new();
                while !self.at_end() && self.text() != ";" {
                    self.take(Some(&mut buf));
                }
                self.bump(); // ';'
                if is_pub && !in_test {
                    let sig = format!("pub {}", join(&merge_ops(buf)));
                    self.record(mods, sig, line);
                }
            }
            "fn" => self.item_fn(mods, is_pub, in_test, prefix, None),
            "struct" => self.item_struct(mods, is_pub, in_test),
            "enum" => self.item_enum(mods, is_pub, in_test),
            "trait" => self.item_trait(mods, is_pub, in_test, prefix),
            "impl" => self.item_impl(mods, in_test),
            "type" | "static" | "const" => self.item_terse(mods, is_pub, in_test),
            "macro_rules" if self.text_at(1) == "!" => {
                let line = self.line();
                self.bump(); // macro_rules
                self.bump(); // !
                let name = self.text().to_string();
                self.bump();
                match self.text() {
                    "{" => self.skip_balanced("{", "}", None),
                    "(" => self.skip_balanced("(", ")", None),
                    "[" => self.skip_balanced("[", "]", None),
                    _ => self.skip_item(),
                }
                if exported_macro && !in_test {
                    self.record(mods, format!("#[macro_export] macro_rules! {name}"), line);
                }
            }
            "extern" if self.text_at(1) == "crate" => self.skip_item(),
            _ => self.skip_item(),
        }
    }

    fn item_mod(&mut self, mods: &mut Vec<String>, is_pub: bool, in_test: bool) {
        let line = self.line();
        self.bump(); // 'mod'
        let name = self.text().to_string();
        self.bump();
        match self.text() {
            ";" => {
                self.bump();
                if is_pub && !in_test {
                    self.record(mods, format!("pub mod {name}"), line);
                }
            }
            "{" => {
                if is_pub && !in_test {
                    self.record(mods, format!("pub mod {name}"), line);
                    self.bump(); // '{'
                    mods.push(name);
                    self.scope(mods, true);
                    mods.pop();
                    if self.text() == "}" {
                        self.bump();
                    }
                } else {
                    // private / test mod: its items are not public API
                    self.skip_balanced("{", "}", None);
                }
            }
            _ => self.skip_item(),
        }
    }

    fn item_fn(
        &mut self,
        mods: &[String],
        is_pub: bool,
        in_test: bool,
        prefix: Vec<String>,
        ctx: Option<&str>,
    ) {
        let line = self.line();
        let mut buf = prefix;
        self.sig_until_body(&mut buf);
        match self.text() {
            "{" => self.skip_balanced("{", "}", None),
            ";" => self.bump(),
            _ => {}
        }
        if is_pub && !in_test {
            let sig = join(&merge_ops(buf));
            let sig = match ctx {
                Some(c) => format!("{c} :: pub {sig}"),
                None => format!("pub {sig}"),
            };
            self.record(mods, sig, line);
        }
    }

    fn item_struct(&mut self, mods: &[String], is_pub: bool, in_test: bool) {
        let line = self.line();
        let mut head = Vec::new();
        self.take(Some(&mut head)); // 'struct'
        let name = self.text().to_string();
        self.take(Some(&mut head)); // name
        if self.text() == "<" {
            self.skip_balanced_angle(&mut head);
        }
        // optional where clause before a braced/unit body
        while !self.at_end() && !matches!(self.text(), "{" | ";" | "(") {
            self.take(Some(&mut head));
        }
        match self.text() {
            ";" => {
                self.bump();
                if is_pub && !in_test {
                    self.record(mods, format!("pub {}", join(&merge_ops(head))), line);
                }
            }
            "(" => {
                // tuple struct: private field types are elided to `_`
                let fields = self.tuple_fields();
                while !self.at_end() && self.text() != ";" {
                    self.take(Some(&mut head)); // trailing where clause
                }
                self.bump(); // ';'
                if is_pub && !in_test {
                    let sig =
                        format!("pub {}({})", join(&merge_ops(head)), fields.join(", "));
                    self.record(mods, sig, line);
                }
            }
            "{" => {
                if is_pub && !in_test {
                    self.record(mods, format!("pub {}", join(&merge_ops(head))), line);
                }
                self.bump(); // '{'
                self.struct_fields(mods, &name, is_pub && !in_test);
                if self.text() == "}" {
                    self.bump();
                }
            }
            _ => self.skip_item(),
        }
    }

    /// Consumes a balanced `<…>` generic group into `buf`.
    fn skip_balanced_angle(&mut self, buf: &mut Vec<String>) {
        let mut depth = 0i32;
        let mut prev = String::new();
        while !self.at_end() {
            let t = self.text().to_string();
            if t == "<" {
                depth += 1;
            } else if t == ">" && prev != "-" && prev != "=" {
                depth -= 1;
            }
            self.take(Some(buf));
            if depth == 0 {
                return;
            }
            prev = t;
        }
    }

    /// Tuple-struct payload: `(pub A, B)` → `["pub A", "_"]`.
    fn tuple_fields(&mut self) -> Vec<String> {
        let mut fields = Vec::new();
        self.bump(); // '('
        loop {
            if self.at_end() || self.text() == ")" {
                self.bump();
                return fields;
            }
            self.skip_attrs();
            let mut vis = false;
            if self.text() == "pub" {
                if self.text_at(1) == "(" {
                    self.bump();
                    self.skip_balanced("(", ")", None);
                } else {
                    vis = true;
                    self.bump();
                }
            }
            // field type: up to `,` or `)` at depth 0
            let mut ty = Vec::new();
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut angle = 0i32;
            while !self.at_end() {
                match self.text() {
                    "(" => paren += 1,
                    ")" if paren == 0 => break,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "<" => angle += 1,
                    ">" if ty.last().map(String::as_str) != Some("-") => angle -= 1,
                    "," if paren <= 0 && bracket <= 0 && angle <= 0 => break,
                    _ => {}
                }
                self.take(Some(&mut ty));
            }
            fields.push(if vis {
                format!("pub {}", join(&merge_ops(ty)))
            } else {
                "_".to_string()
            });
            if self.text() == "," {
                self.bump();
            }
        }
    }

    /// Braced-struct body: records `pub` fields as `Name.field: Type`.
    fn struct_fields(&mut self, mods: &[String], name: &str, record: bool) {
        while !self.at_end() && self.text() != "}" {
            self.skip_attrs();
            let line = self.line();
            let mut vis = false;
            if self.text() == "pub" {
                if self.text_at(1) == "(" {
                    self.bump();
                    self.skip_balanced("(", ")", None);
                } else {
                    vis = true;
                    self.bump();
                }
            }
            let fname = self.text().to_string();
            self.bump();
            if self.text() != ":" {
                self.skip_item();
                continue;
            }
            self.bump(); // ':'
            let mut ty = Vec::new();
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut angle = 0i32;
            while !self.at_end() {
                match self.text() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "<" => angle += 1,
                    ">" if ty.last().map(String::as_str) != Some("-") => angle -= 1,
                    "," if paren <= 0 && bracket <= 0 && angle <= 0 => break,
                    "}" if paren <= 0 && bracket <= 0 && angle <= 0 => break,
                    _ => {}
                }
                self.take(Some(&mut ty));
            }
            if self.text() == "," {
                self.bump();
            }
            if vis && record {
                let sig = format!("pub {name}.{fname}: {}", join(&merge_ops(ty)));
                self.record(mods, sig, line);
            }
        }
    }

    fn item_enum(&mut self, mods: &[String], is_pub: bool, in_test: bool) {
        let line = self.line();
        let mut head = Vec::new();
        self.take(Some(&mut head)); // 'enum'
        let name = self.text().to_string();
        self.take(Some(&mut head));
        while !self.at_end() && self.text() != "{" && self.text() != ";" {
            if self.text() == "<" {
                self.skip_balanced_angle(&mut head);
            } else {
                self.take(Some(&mut head));
            }
        }
        let rec = is_pub && !in_test;
        if rec {
            self.record(mods, format!("pub {}", join(&merge_ops(head))), line);
        }
        if self.text() != "{" {
            self.skip_item();
            return;
        }
        self.bump(); // '{'
        while !self.at_end() && self.text() != "}" {
            self.skip_attrs();
            if self.text() == "}" {
                break;
            }
            let vline = self.line();
            // variant name + payload/discriminant up to `,` or `}` at depth 0
            let mut body = Vec::new();
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut brace = 0i32;
            while !self.at_end() {
                match self.text() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" => brace += 1,
                    "}" if brace > 0 => brace -= 1,
                    "}" => break,
                    "," if paren <= 0 && bracket <= 0 && brace <= 0 => break,
                    _ => {}
                }
                self.take(Some(&mut body));
            }
            if self.text() == "," {
                self.bump();
            }
            if rec && !body.is_empty() {
                let sig = format!("pub enum {name} :: {}", join(&merge_ops(body)));
                self.record(mods, sig, vline);
            }
        }
        if self.text() == "}" {
            self.bump();
        }
    }

    fn item_trait(
        &mut self,
        mods: &[String],
        is_pub: bool,
        in_test: bool,
        prefix: Vec<String>,
    ) {
        let line = self.line();
        let mut head = prefix;
        self.sig_until_body(&mut head);
        let header = join(&merge_ops(head.clone()));
        let rec = is_pub && !in_test;
        if rec {
            self.record(mods, format!("pub {header}"), line);
        }
        if self.text() != "{" {
            if self.text() == ";" {
                self.bump();
            }
            return;
        }
        // context label: `trait Name` (header minus bounds/where)
        let ctx = {
            let mut short = Vec::new();
            for t in &head {
                if t == ":" || t == "where" {
                    break;
                }
                short.push(t.clone());
            }
            join(&merge_ops(short))
        };
        self.bump(); // '{'
        while !self.at_end() && self.text() != "}" {
            self.skip_attrs();
            let iline = self.line();
            let mut pfx = Vec::new();
            loop {
                match self.text() {
                    "unsafe" | "async" => self.take(Some(&mut pfx)),
                    "const" if self.text_at(1) == "fn" => self.take(Some(&mut pfx)),
                    "extern" if self.text_at(1).starts_with('"') => {
                        self.take(Some(&mut pfx));
                        self.take(Some(&mut pfx));
                    }
                    _ => break,
                }
            }
            match self.text() {
                "fn" => {
                    let mut buf = pfx;
                    self.sig_until_body(&mut buf);
                    match self.text() {
                        "{" => self.skip_balanced("{", "}", None), // default body
                        ";" => self.bump(),
                        _ => {}
                    }
                    if rec {
                        let sig = format!("{ctx} :: {}", join(&merge_ops(buf)));
                        self.record(mods, sig, iline);
                    }
                }
                "type" | "const" => {
                    let mut buf = Vec::new();
                    while !self.at_end() && self.text() != ";" && self.text() != "=" {
                        self.take(Some(&mut buf));
                    }
                    self.skip_item(); // to `;` (defaults included)
                    if rec {
                        let sig = format!("{ctx} :: {}", join(&merge_ops(buf)));
                        self.record(mods, sig, iline);
                    }
                }
                "}" => break,
                _ => self.skip_item(),
            }
        }
        if self.text() == "}" {
            self.bump();
        }
    }

    fn item_impl(&mut self, mods: &[String], in_test: bool) {
        let line = self.line();
        let mut head = Vec::new();
        self.sig_until_body(&mut head);
        // `impl Trait for Type` (a `for` not opening an HRTB `for<…>`)
        let is_trait_impl = head
            .iter()
            .enumerate()
            .any(|(n, t)| t == "for" && head.get(n + 1).map(String::as_str) != Some("<"));
        let header = join(&merge_ops(head.clone()));
        if self.text() != "{" {
            if self.text() == ";" {
                self.bump();
            }
            return;
        }
        if is_trait_impl {
            // the trait determines the surface; one line for the impl
            if !in_test {
                self.record(mods, header, line);
            }
            self.skip_balanced("{", "}", None);
            return;
        }
        // inherent impl: descend for pub methods / consts
        let ctx = header;
        self.bump(); // '{'
        while !self.at_end() && self.text() != "}" {
            self.skip_attrs();
            let Some(start_idx) = self.tok_idx() else { break };
            let item_in_test = in_test || self.sf.in_test(start_idx);
            let mut is_pub = false;
            if self.text() == "pub" {
                if self.text_at(1) == "(" {
                    self.bump();
                    self.skip_balanced("(", ")", None);
                } else {
                    is_pub = true;
                    self.bump();
                }
            }
            let mut pfx = Vec::new();
            loop {
                match self.text() {
                    "unsafe" | "async" => self.take(Some(&mut pfx)),
                    "const" if self.text_at(1) == "fn" => self.take(Some(&mut pfx)),
                    "extern" if self.text_at(1).starts_with('"') => {
                        self.take(Some(&mut pfx));
                        self.take(Some(&mut pfx));
                    }
                    _ => break,
                }
            }
            match self.text() {
                "fn" => self.item_fn(mods, is_pub, item_in_test, pfx, Some(&ctx)),
                "type" | "const" => {
                    let iline = self.line();
                    let mut buf = Vec::new();
                    while !self.at_end() && self.text() != ";" && self.text() != "=" {
                        self.take(Some(&mut buf));
                    }
                    self.skip_item();
                    if is_pub && !item_in_test {
                        let sig = format!("{ctx} :: pub {}", join(&merge_ops(buf)));
                        self.record(mods, sig, iline);
                    }
                }
                "}" => break,
                _ => self.skip_item(),
            }
        }
        if self.text() == "}" {
            self.bump();
        }
    }

    /// `type`/`static`/`const` items: signature up to `=` or `;`.
    fn item_terse(&mut self, mods: &[String], is_pub: bool, in_test: bool) {
        let line = self.line();
        let mut buf = Vec::new();
        while !self.at_end() && self.text() != ";" && self.text() != "=" {
            if self.text() == "<" {
                self.skip_balanced_angle(&mut buf);
            } else {
                self.take(Some(&mut buf));
            }
        }
        self.skip_item(); // consume `= value;` or `;`
        if is_pub && !in_test {
            self.record(mods, format!("pub {}", join(&merge_ops(buf))), line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Vec<String> {
        let sf = SourceFile::parse("crates/demo/src/lib.rs", src);
        public_items(&sf)
            .into_iter()
            .map(|i| {
                if i.module.is_empty() {
                    i.signature
                } else {
                    format!("[{}] {}", i.module, i.signature)
                }
            })
            .collect()
    }

    #[test]
    fn fn_signature_is_normalized() {
        let got = items("pub fn build(encoder: E, kg: &KnowledgeGraph) -> Self { todo!() }\n");
        assert_eq!(got, vec!["pub fn build(encoder: E, kg: &KnowledgeGraph) -> Self"]);
    }

    #[test]
    fn private_items_and_test_items_are_skipped() {
        let src = r#"
            fn private() {}
            pub(crate) fn crate_only() {}
            #[cfg(test)]
            mod tests { pub fn in_test() {} }
        "#;
        assert!(items(src).is_empty());
    }

    #[test]
    fn struct_records_pub_fields_only() {
        let src = "pub struct Candidate { pub entity: EntityId, score_cache: f32, pub score: f32 }\n";
        let got = items(src);
        assert_eq!(
            got,
            vec![
                "pub struct Candidate",
                "pub Candidate.entity: EntityId",
                "pub Candidate.score: f32",
            ]
        );
    }

    #[test]
    fn tuple_struct_elides_private_fields() {
        let got = items("pub struct Far(f32, pub u32);\n");
        assert_eq!(got, vec!["pub struct Far(_, pub u32)"]);
    }

    #[test]
    fn enum_variants_are_recorded() {
        let src = "pub enum Compression { None, Pq { m: usize }, Pca(usize) }\n";
        let got = items(src);
        assert_eq!(
            got,
            vec![
                "pub enum Compression",
                "pub enum Compression :: None",
                "pub enum Compression :: Pq { m: usize }",
                "pub enum Compression :: Pca(usize)",
            ]
        );
    }

    #[test]
    fn inherent_impl_methods_carry_context() {
        let src = "pub struct S;\nimpl S {\n    pub fn get(&self) -> u32 { 1 }\n    fn internal(&self) {}\n}\n";
        let got = items(src);
        assert_eq!(got, vec!["pub struct S", "impl S :: pub fn get(&self) -> u32"]);
    }

    #[test]
    fn trait_impls_are_one_line() {
        let src = "impl LookupService for EncoderIndex<E> {\n    fn lookup(&self) {}\n}\n";
        assert_eq!(items(src), vec!["impl LookupService for EncoderIndex<E>"]);
    }

    #[test]
    fn trait_methods_are_recorded() {
        let src = "pub trait StringEncoder: Send {\n    fn dim(&self) -> usize;\n    fn embed(&self, s: &str) -> Vec<f32> { Vec::new() }\n}\n";
        let got = items(src);
        assert_eq!(
            got,
            vec![
                "pub trait StringEncoder: Send",
                "trait StringEncoder :: fn dim(&self) -> usize",
                "trait StringEncoder :: fn embed(&self, s: &str) -> Vec<f32>",
            ]
        );
    }

    #[test]
    fn inline_pub_mod_nests_and_private_mod_hides() {
        let src = r#"
            pub mod outer {
                pub fn visible() {}
                mod hidden { pub fn invisible() {} }
            }
        "#;
        let got = items(src);
        assert_eq!(got, vec!["pub mod outer", "[outer] pub fn visible()"]);
    }

    #[test]
    fn pub_use_and_exported_macros_are_recorded() {
        let src = "pub use topk::{Neighbor, TopK};\n#[macro_export]\nmacro_rules! static_counter { () => {} }\n";
        let got = items(src);
        assert_eq!(
            got,
            vec![
                "pub use topk::{ Neighbor, TopK }",
                "#[macro_export] macro_rules! static_counter",
            ]
        );
    }

    #[test]
    fn generics_and_where_clauses_survive() {
        let src = "pub fn pick<T: Clone>(xs: &[T]) -> Option<T> where T: Default { None }\n";
        assert_eq!(
            items(src),
            vec!["pub fn pick<T: Clone>(xs: &[T]) -> Option<T> where T: Default"]
        );
    }

    #[test]
    fn use_imports_resolve_groups_aliases_and_globs() {
        let src = r#"
            use emblookup_kg::Candidate;
            use emblookup_ann::{flat, ivf::IvfIndex, topk::TopK as Heap};
            use emblookup_obs::names::*;
            use std::collections::HashMap;
        "#;
        let sf = SourceFile::parse("crates/demo/src/lib.rs", src);
        let m = use_imports(&sf);
        assert_eq!(m.names.get("Candidate").map(String::as_str), Some("emblookup_kg"));
        assert_eq!(m.names.get("flat").map(String::as_str), Some("emblookup_ann"));
        assert_eq!(m.names.get("IvfIndex").map(String::as_str), Some("emblookup_ann"));
        assert_eq!(m.names.get("Heap").map(String::as_str), Some("emblookup_ann"));
        assert!(!m.names.contains_key("TopK"), "alias replaces the original name");
        assert!(!m.names.contains_key("HashMap"), "std imports are not workspace imports");
        assert_eq!(m.globs, vec!["emblookup_obs".to_string()]);
    }

    #[test]
    fn crate_refs_found_outside_tests_only() {
        let src = r#"
            use emblookup_kg::Candidate;
            pub fn f() -> emblookup_text::Alphabet { emblookup_text::Alphabet::default_lookup() }
            #[cfg(test)]
            mod tests { use emblookup_ann::sq_l2; }
        "#;
        let sf = SourceFile::parse("crates/demo/src/lib.rs", src);
        let refs = crate_refs(&sf);
        let crates: Vec<&str> = refs.iter().map(|r| r.krate.as_str()).collect();
        assert_eq!(crates, vec!["emblookup_kg", "emblookup_text", "emblookup_text"]);
    }
}
