//! L006 — public-API drift gating against a checked-in `API.lock`.
//!
//! [`Snapshot`] is a normalized view of every library crate's `pub`
//! surface (from [`crate::parser::public_items`]): one line per item,
//! grouped into `[crate-name]` sections, sorted, deterministic. The
//! snapshot is serialized to `API.lock` at the workspace root by
//! `emblookup-lint --api-bless`; `--api-check` re-derives it and fails
//! on any difference, so every surface change is explicit in a PR's
//! `API.lock` diff.
//!
//! Entry format: `<module-path> <signature>`, with `.` standing for the
//! crate root. The lines are treated as opaque strings for diffing —
//! nothing ever parses them back into items.

use crate::engine::{FileClass, SourceFile, Violation};
use crate::parser::public_items;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Name of the lockfile at the workspace root.
pub const LOCK_FILE: &str = "API.lock";

const HEADER: &str = "\
# EmbLookup public-API lockfile — maintained by `emblookup-lint` (rule L006).
# One line per public item: `<module-path> <normalized signature>`, `.` = crate root.
# CI fails on any drift; regenerate deliberately with `emblookup-lint --api-bless`.
";

/// A normalized public-API snapshot of the workspace.
#[derive(Debug, Default)]
pub struct Snapshot {
    /// crate name → sorted, deduplicated entry lines.
    pub sections: BTreeMap<String, BTreeSet<String>>,
    /// (crate, entry) → first source occurrence, for added-item
    /// diagnostics.
    pub provenance: HashMap<(String, String), (String, u32)>,
}

/// Module path of a file inside its crate's `src/`: `lib.rs` → ``,
/// `topk.rs` → `topk`, `foo/mod.rs` → `foo`, `foo/bar.rs` → `foo::bar`.
fn file_module(src_rel: &str) -> String {
    let trimmed = src_rel.strip_suffix(".rs").unwrap_or(src_rel);
    let mut parts: Vec<&str> = trimmed.split('/').collect();
    match parts.last().copied() {
        Some("lib") | Some("mod") => {
            parts.pop();
        }
        _ => {}
    }
    parts.join("::")
}

impl Snapshot {
    /// Adds one parsed file belonging to `krate`. `rel` is the
    /// workspace-relative path; `src_rel` the path inside `src/`.
    pub fn add_file(&mut self, krate: &str, rel: &str, src_rel: &str, sf: &SourceFile) {
        self.add_items(krate, rel, src_rel, sf.class, &public_items(sf));
    }

    /// Variant over pre-extracted items (the facts/cache path, where no
    /// parsed [`SourceFile`] exists).
    pub fn add_items(
        &mut self,
        krate: &str,
        rel: &str,
        src_rel: &str,
        class: FileClass,
        items: &[crate::parser::ApiItem],
    ) {
        if class != FileClass::Lib {
            return; // binaries and benches have no library surface
        }
        let base = file_module(src_rel);
        for item in items {
            let module = match (base.as_str(), item.module.as_str()) {
                ("", "") => ".".to_string(),
                ("", m) => m.to_string(),
                (b, "") => b.to_string(),
                (b, m) => format!("{b}::{m}"),
            };
            let entry = format!("{module} {}", item.signature);
            self.provenance
                .entry((krate.to_string(), entry.clone()))
                .or_insert_with(|| (rel.to_string(), item.line));
            self.sections.entry(krate.to_string()).or_default().insert(entry);
        }
    }

    /// Serializes the snapshot to the `API.lock` text format.
    pub fn render(&self) -> String {
        let mut out = String::from(HEADER);
        for (krate, entries) in &self.sections {
            out.push('\n');
            out.push_str(&format!("[{krate}]\n"));
            for e in entries {
                out.push_str(e);
                out.push('\n');
            }
        }
        out
    }
}

/// Per-crate sorted entry sets, as stored in the lockfile.
type LockSections = BTreeMap<String, BTreeSet<String>>;
/// 1-based lockfile line of each `(crate, entry)` pair, for diagnostics.
type LockLines = HashMap<(String, String), u32>;

/// Parses lockfile text back into sections, remembering each entry's
/// 1-based line for removed-item diagnostics.
fn parse_lock(text: &str) -> (LockSections, LockLines) {
    let mut sections: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut lines: HashMap<(String, String), u32> = HashMap::new();
    let mut current = String::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[') {
            current = name.trim_end_matches(']').to_string();
            sections.entry(current.clone()).or_default();
            continue;
        }
        if current.is_empty() {
            continue; // stray line before any section; ignore
        }
        sections.entry(current.clone()).or_default().insert(line.to_string());
        lines.insert((current.clone(), line.to_string()), n as u32 + 1);
    }
    (sections, lines)
}

/// Compares the current snapshot against lockfile text, producing one
/// L006 violation per drifted entry. Added items point at their source
/// `file:line`; removed items point at the stale `API.lock` line.
pub fn diff(lock_text: &str, current: &Snapshot) -> Vec<Violation> {
    let (locked, lock_lines) = parse_lock(lock_text);
    let empty = BTreeSet::new();
    let mut out = Vec::new();

    let all_crates: BTreeSet<&String> =
        locked.keys().chain(current.sections.keys()).collect();
    for krate in all_crates {
        let was = locked.get(krate).unwrap_or(&empty);
        let now = current.sections.get(krate).unwrap_or(&empty);
        for added in now.difference(was) {
            let (file, line) = current
                .provenance
                .get(&(krate.clone(), added.clone()))
                .cloned()
                .unwrap_or_else(|| (LOCK_FILE.to_string(), 0));
            out.push(Violation {
                file,
                line,
                rule: "L006".to_string(),
                message: format!(
                    "public API of `{krate}` changed without bless: added `{added}` \
                     (run `emblookup-lint --api-bless` and commit {LOCK_FILE})"
                ),
                suggestion: None,
            });
        }
        for removed in was.difference(now) {
            let line = lock_lines
                .get(&(krate.clone(), removed.clone()))
                .copied()
                .unwrap_or(0);
            out.push(Violation {
                file: LOCK_FILE.to_string(),
                line,
                rule: "L006".to_string(),
                message: format!(
                    "public API of `{krate}` changed without bless: removed `{removed}` \
                     (run `emblookup-lint --api-bless` and commit {LOCK_FILE})"
                ),
                suggestion: None,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(krate: &str, src_rel: &str, src: &str) -> Snapshot {
        let mut s = Snapshot::default();
        let rel = format!("crates/x/src/{src_rel}");
        let sf = SourceFile::parse(&rel, src);
        s.add_file(krate, &rel, src_rel, &sf);
        s
    }

    #[test]
    fn file_module_mapping() {
        assert_eq!(file_module("lib.rs"), "");
        assert_eq!(file_module("topk.rs"), "topk");
        assert_eq!(file_module("foo/mod.rs"), "foo");
        assert_eq!(file_module("foo/bar.rs"), "foo::bar");
    }

    #[test]
    fn snapshot_round_trips_through_render_and_diff() {
        let s = snap("emblookup-demo", "topk.rs", "pub fn top(k: usize) -> usize { k }\n");
        let text = s.render();
        assert!(text.contains("[emblookup-demo]"));
        assert!(text.contains("topk pub fn top(k: usize) -> usize"));
        assert!(diff(&text, &s).is_empty(), "identical snapshot must not drift");
    }

    #[test]
    fn added_item_points_at_source() {
        let old = snap("emblookup-demo", "topk.rs", "pub fn top(k: usize) -> usize { k }\n");
        let lock = old.render();
        let new = snap(
            "emblookup-demo",
            "topk.rs",
            "pub fn top(k: usize) -> usize { k }\npub fn extra() {}\n",
        );
        let v = diff(&lock, &new);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L006");
        assert_eq!(v[0].file, "crates/x/src/topk.rs");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("added"));
    }

    #[test]
    fn removed_item_points_at_lock_line() {
        let old = snap(
            "emblookup-demo",
            "topk.rs",
            "pub fn top(k: usize) -> usize { k }\npub fn extra() {}\n",
        );
        let lock = old.render();
        let new = snap("emblookup-demo", "topk.rs", "pub fn top(k: usize) -> usize { k }\n");
        let v = diff(&lock, &new);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].file, LOCK_FILE);
        assert!(v[0].line > 0, "should carry the stale lock line");
        assert!(v[0].message.contains("removed"));
    }

    #[test]
    fn changed_signature_reports_add_and_remove() {
        let old = snap("emblookup-demo", "lib.rs", "pub fn f(x: u32) {}\n");
        let lock = old.render();
        let new = snap("emblookup-demo", "lib.rs", "pub fn f(x: u64) {}\n");
        let v = diff(&lock, &new);
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn binaries_contribute_no_surface() {
        let mut s = Snapshot::default();
        let sf = SourceFile::parse("crates/x/src/main.rs", "pub fn exposed() {}\n");
        s.add_file("emblookup-demo", "crates/x/src/main.rs", "main.rs", &sf);
        assert!(s.sections.is_empty());
    }
}
