//! Report rendering: the machine-readable JSON document and the
//! per-rule count summary shared by the text output and CI.
//!
//! The JSON schema is documented on [`render_json`]; field order is
//! stable by construction (hand-rolled serialization, no map iteration
//! over unordered containers), so the output is goldenable.

use crate::engine::{Violation, RULES};

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Violation count per rule, zeros included, in catalog order
/// (`L000` first, then [`RULES`]).
pub fn rule_counts(violations: &[Violation]) -> Vec<(&'static str, usize)> {
    let mut out = Vec::with_capacity(RULES.len() + 1);
    for rule in std::iter::once(&"L000").chain(RULES.iter()) {
        let n = violations.iter().filter(|v| v.rule == *rule).count();
        out.push((*rule, n));
    }
    out
}

/// Renders the JSON report. Schema (stable field order, one line):
///
/// ```json
/// {
///   "violations": [
///     {"file": "crates/x/src/lib.rs", "line": 3, "rule": "L001",
///      "message": "…", "suggestion": "…"}
///   ],
///   "warnings": [
///     {"file": "crates/x/src/lib.rs", "line": 9, "rule": "L000",
///      "message": "stale `// lint: allow(L001)`: …"}
///   ],
///   "files_checked": 42,
///   "rule_counts": {"L000": 0, "L001": 1, "…": 0}
/// }
/// ```
///
/// `suggestion` is present only when the violation carries one (today:
/// L003 literals that map onto a registered constant). `warnings` holds
/// advisory findings (the stale-allow audit) that do not affect the
/// exit code and are not counted in `rule_counts`. `rule_counts`
/// always lists every catalog rule, zeros included, in catalog order.
pub fn render_json(violations: &[Violation], warnings: &[Violation], files_checked: usize) -> String {
    let mut out = String::from("{\"violations\":[");
    render_items(&mut out, violations);
    out.push_str("],\"warnings\":[");
    render_items(&mut out, warnings);
    out.push_str(&format!("],\"files_checked\":{files_checked},\"rule_counts\":{{"));
    for (i, (rule, n)) in rule_counts(violations).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{rule}\":{n}"));
    }
    out.push_str("}}");
    out
}

fn render_items(out: &mut String, items: &[Violation]) {
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"",
            json_escape(&v.file),
            v.line,
            json_escape(&v.rule),
            json_escape(&v.message)
        ));
        if let Some(s) = &v.suggestion {
            out.push_str(&format!(",\"suggestion\":\"{}\"", json_escape(s)));
        }
        out.push('}');
    }
}

/// Renders the one-line per-rule summary for the text report and CI
/// logs: `per-rule: L000=0 L001=2 …`.
pub fn render_rule_summary(violations: &[Violation]) -> String {
    let parts: Vec<String> = rule_counts(violations)
        .iter()
        .map(|(rule, n)| format!("{rule}={n}"))
        .collect();
    format!("per-rule: {}", parts.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, line: u32, rule: &str, suggestion: Option<&str>) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message: "m".to_string(),
            suggestion: suggestion.map(str::to_string),
        }
    }

    #[test]
    fn counts_include_zeros_in_catalog_order() {
        let vs = vec![v("a", 1, "L003", None), v("b", 2, "L003", None), v("c", 3, "L007", None)];
        let counts = rule_counts(&vs);
        assert_eq!(counts[0], ("L000", 0));
        assert!(counts.contains(&("L003", 2)));
        assert!(counts.contains(&("L005", 0)));
        assert!(counts.contains(&("L007", 1)));
        assert_eq!(counts.len(), RULES.len() + 1);
    }

    #[test]
    fn json_escapes_and_orders_fields() {
        let vs = vec![v("a\"b.rs", 7, "L001", Some("X"))];
        let ws = vec![v("w.rs", 2, "L000", None)];
        let j = render_json(&vs, &ws, 3);
        assert!(j.starts_with("{\"violations\":["));
        assert!(j.contains("\"file\":\"a\\\"b.rs\""));
        assert!(j.contains("\"suggestion\":\"X\""));
        assert!(j.contains("\"warnings\":[{\"file\":\"w.rs\""));
        assert!(j.contains("\"files_checked\":3"));
        assert!(j.contains("\"rule_counts\":{\"L000\":0,\"L001\":1,"));
    }

    #[test]
    fn summary_lists_every_rule() {
        let s = render_rule_summary(&[]);
        for rule in RULES {
            assert!(s.contains(&format!("{rule}=0")), "{s}");
        }
    }
}
