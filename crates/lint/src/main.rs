//! `emblookup-lint` CLI: loads the workspace model, runs every pass and
//! reports violations. Exit code 0 = clean, 1 = violations, 2 =
//! usage/IO error.
//!
//! ```text
//! emblookup-lint [--root DIR] [--format text|json] [--no-cache]
//!                [--api-check | --api-bless]
//!                [--fix-metric-names [--write]]
//! emblookup-lint --explain Lxxx
//! emblookup-lint --atomics-report
//! ```
//!
//! * `--api-check` additionally diffs the current public-API snapshot
//!   against the checked-in `API.lock` (rule L006).
//! * `--api-bless` regenerates `API.lock` from the current tree and
//!   exits; commit the result to acknowledge an API change.
//! * `--fix-metric-names` prints a dry-run plan mapping each metric-name
//!   literal onto its `emblookup_obs::names` constant; with `--write`
//!   the files are rewritten in place (idempotently) and the report
//!   reflects the rewritten tree.
//! * `--explain Lxxx` prints the rule's rationale, an offending example
//!   and the escape-hatch policy from the in-source rule-doc table.
//! * `--atomics-report` prints the per-atomic protocol inventory
//!   (markdown) and exits; CI regenerates the committed `ATOMICS.md`
//!   from it and fails on drift.
//! * `--no-cache` bypasses the incremental fact cache under
//!   `target/emblookup-lint/` (a cached run reports identical
//!   diagnostics; the flag exists for debugging and the CI identity
//!   test).
//!
//! Advisory warnings (the stale-allow audit) are printed after the
//! violations and never affect the exit code.
//!
//! # JSON output schema (`--format json`)
//!
//! One line, stable field order (goldenable):
//!
//! ```json
//! {"violations":[
//!    {"file":"crates/x/src/lib.rs","line":3,"rule":"L001",
//!     "message":"…","suggestion":"…"}],
//!  "warnings":[],
//!  "files_checked":42,
//!  "rule_counts":{"L000":0,"L001":1,"L002":0,"L003":0,"L004":0,
//!                 "L005":0,"L006":0,"L007":0,"L008":0,"L009":0,
//!                 "L010":0,"L011":0,"L012":0,"L013":0}}
//! ```
//!
//! `violations` is sorted by (file, line, rule); `suggestion` appears
//! only on violations that carry one (L003 literals with a registered
//! constant); `warnings` holds the advisory stale-allow audit;
//! `rule_counts` always lists every catalog rule, zeros included, in
//! catalog order.

use emblookup_lint::{api, dataflow, fix, obs_name_registry, report, rules, walk, workspace, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    json: bool,
    fix_metric_names: bool,
    write: bool,
    api_check: bool,
    api_bless: bool,
    no_cache: bool,
    explain: Option<String>,
    atomics_report: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        fix_metric_names: false,
        write: false,
        api_check: false,
        api_bless: false,
        no_cache: false,
        explain: None,
        atomics_report: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root requires a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--fix-metric-names" => opts.fix_metric_names = true,
            "--write" => opts.write = true,
            "--api-check" => opts.api_check = true,
            "--api-bless" => opts.api_bless = true,
            "--no-cache" => opts.no_cache = true,
            "--atomics-report" => opts.atomics_report = true,
            "--explain" => {
                let v = args.next().ok_or("--explain requires a rule id (e.g. L008)")?;
                opts.explain = Some(v);
            }
            "--help" | "-h" => {
                println!(
                    "emblookup-lint [--root DIR] [--format text|json] [--no-cache] [--api-check | --api-bless] [--fix-metric-names [--write]] | --explain Lxxx | --atomics-report\n\
                     Repo-specific lints: L001 panic-freedom, L002 hot-path, L003 metric names,\n\
                     L004 TODO hygiene, L005 crate layering, L006 API drift (API.lock), L007 float discipline,\n\
                     L008 determinism, L009 lock discipline, L010 interprocedural hot-path effects,\n\
                     L011 atomics-ordering protocols, L012 deadline propagation, L013 guard-free shared writes.\n\
                     `--explain Lxxx` prints any rule's rationale, example and escape-hatch policy;\n\
                     `--atomics-report` prints the ATOMICS.md protocol inventory."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.write && !opts.fix_metric_names {
        return Err("--write only makes sense with --fix-metric-names".to_string());
    }
    if opts.api_check && opts.api_bless {
        return Err("--api-check and --api-bless are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    if let Some(id) = &opts.explain {
        return match rules::explain(id) {
            Some(text) => {
                println!("{text}");
                Ok(ExitCode::SUCCESS)
            }
            None => Err(format!(
                "unknown rule `{id}`; known rules: {}",
                rules::RULE_DOCS.iter().map(|d| d.id).collect::<Vec<_>>().join(", ")
            )),
        };
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    let root = match opts.root {
        Some(r) => r,
        None => walk::find_root(&cwd)
            .ok_or("no workspace root found (run inside the repo or pass --root)")?,
    };
    let registry = obs_name_registry();
    let use_cache = !opts.no_cache;
    let mut ws = Workspace::load(&root, &registry, use_cache)?;

    if opts.atomics_report {
        print!("{}", dataflow::atomics_report(&ws.files));
        return Ok(ExitCode::SUCCESS);
    }

    if opts.api_bless {
        let snapshot = ws.api_snapshot();
        let lock_path = root.join(api::LOCK_FILE);
        std::fs::write(&lock_path, snapshot.render())
            .map_err(|e| format!("writing {}: {e}", lock_path.display()))?;
        println!(
            "emblookup-lint: blessed {} ({} crates, {} public items)",
            api::LOCK_FILE,
            snapshot.sections.len(),
            snapshot.sections.values().map(|s| s.len()).sum::<usize>()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if opts.fix_metric_names && opts.write {
        let mut rewritten = 0usize;
        for f in &ws.files {
            let path = root.join(&f.rel);
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", f.rel))?;
            if let Some(fixed) = fix::rewrite_source(&f.rel, &src, &registry) {
                std::fs::write(&path, fixed)
                    .map_err(|e| format!("writing {}: {e}", f.rel))?;
                println!("--fix-metric-names: rewrote {}", f.rel);
                rewritten += 1;
            }
        }
        println!("--fix-metric-names: {rewritten} file(s) rewritten");
        // report on the rewritten tree
        ws = Workspace::load(&root, &registry, use_cache)?;
    }

    let report = ws.check();
    let mut violations = report.violations;
    let warnings = report.warnings;
    if opts.api_check {
        let lock_path = root.join(api::LOCK_FILE);
        let lock_text = std::fs::read_to_string(&lock_path).map_err(|e| {
            format!(
                "reading {}: {e} (run `emblookup-lint --api-bless` to create it)",
                lock_path.display()
            )
        })?;
        violations.extend(api::diff(&lock_text, &ws.api_snapshot()));
        workspace::sort(&mut violations);
    }

    if opts.json {
        println!("{}", report::render_json(&violations, &warnings, ws.files.len()));
    } else {
        for v in &violations {
            println!("{}:{}: {}: {}", v.file, v.line, v.rule, v.message);
        }
        for w in &warnings {
            println!("{}:{}: warning: {}", w.file, w.line, w.message);
        }
        println!("emblookup-lint: {}", report::render_rule_summary(&violations));
        println!(
            "emblookup-lint: {} files checked ({} cached, {} cold), {} violation{}, {} warning{}{}",
            ws.files.len(),
            ws.cache_hits,
            ws.cache_misses,
            violations.len(),
            if violations.len() == 1 { "" } else { "s" },
            warnings.len(),
            if warnings.len() == 1 { "" } else { "s" },
            if opts.api_check { " (API.lock checked)" } else { "" }
        );
    }

    if opts.fix_metric_names && !opts.write {
        let fixable: Vec<&emblookup_lint::Violation> =
            violations.iter().filter(|v| v.suggestion.is_some()).collect();
        println!(
            "--fix-metric-names (dry run): {} literal(s) map onto constants (pass --write to apply)",
            fixable.len()
        );
        for v in fixable {
            if let Some(s) = &v.suggestion {
                println!("  {}:{}: replace literal with emblookup_obs::names::{s}", v.file, v.line);
            }
        }
    }

    Ok(if violations.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("emblookup-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
