//! `emblookup-lint` CLI: walks the workspace, runs every pass and reports
//! violations. Exit code 0 = clean, 1 = violations, 2 = usage/IO error.
//!
//! ```text
//! emblookup-lint [--root DIR] [--format text|json] [--fix-metric-names]
//! ```
//!
//! `--fix-metric-names` additionally prints a dry-run plan mapping each
//! metric-name literal onto its `emblookup_obs::names` constant; no files
//! are modified.

use emblookup_lint::{engine::SourceFile, obs_name_registry, walk, Violation};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    json: bool,
    fix_metric_names: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { root: None, json: false, fix_metric_names: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root requires a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--fix-metric-names" => opts.fix_metric_names = true,
            "--help" | "-h" => {
                println!(
                    "emblookup-lint [--root DIR] [--format text|json] [--fix-metric-names]\n\
                     Repo-specific lints: L001 panic-freedom, L002 hot-path, L003 metric names, L004 TODO hygiene."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(violations: &[Violation], files_checked: usize) -> String {
    let mut out = String::from("{\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"",
            json_escape(&v.file),
            v.line,
            json_escape(&v.rule),
            json_escape(&v.message)
        ));
        if let Some(s) = &v.suggestion {
            out.push_str(&format!(",\"suggestion\":\"{}\"", json_escape(s)));
        }
        out.push('}');
    }
    out.push_str(&format!("],\"files_checked\":{files_checked}}}"));
    out
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    let root = match opts.root {
        Some(r) => r,
        None => walk::find_root(&cwd)
            .ok_or("no workspace root found (run inside the repo or pass --root)")?,
    };
    let files = walk::lintable_files(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let registry = obs_name_registry();

    let mut violations: Vec<Violation> = Vec::new();
    for rel in &files {
        let display = rel.to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("reading {display}: {e}"))?;
        violations.extend(SourceFile::parse(&display, &src).check(&registry));
    }
    violations.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then_with(|| a.rule.cmp(&b.rule))
    });

    if opts.json {
        println!("{}", render_json(&violations, files.len()));
    } else {
        for v in &violations {
            println!("{}:{}: {}: {}", v.file, v.line, v.rule, v.message);
        }
        println!(
            "emblookup-lint: {} files checked, {} violation{}",
            files.len(),
            violations.len(),
            if violations.len() == 1 { "" } else { "s" }
        );
    }

    if opts.fix_metric_names {
        let fixable: Vec<&Violation> =
            violations.iter().filter(|v| v.suggestion.is_some()).collect();
        println!("--fix-metric-names (dry run): {} literal(s) map onto constants", fixable.len());
        for v in fixable {
            if let Some(s) = &v.suggestion {
                println!("  {}:{}: replace literal with emblookup_obs::names::{s}", v.file, v.line);
            }
        }
    }

    Ok(if violations.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("emblookup-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}
