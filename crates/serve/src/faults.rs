//! Deterministic fault injection and deadline accounting.
//!
//! Faults exist to prove the serving layer degrades instead of dying:
//! the harness can stretch any pipeline stage, make the ANN backend
//! fail or return poisoned scores, or panic inside the search — and do
//! it **reproducibly**. Scripted plans replay a fixed fault sequence;
//! random plans derive a per-request generator from `seed ^ request
//! index`, so run N of a test sees bit-for-bit the run N-1 saw.
//!
//! Injected latency can run in *virtual time*: instead of sleeping, the
//! fault advances the request's [`DeadlineClock`] by the injected
//! amount. Tests stay fast, and — because virtual milliseconds dwarf
//! the microseconds of real work — degradation decisions become
//! independent of machine speed and pool width.
//!
//! Faults are only ever constructed through [`crate::ServeConfig`];
//! the default config carries `None`, so release binaries cannot
//! trip over a stray fault plan.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A pipeline stage at which faults apply and deadlines are checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Queueing / admission, before any work.
    Admit,
    /// Query embedding (CNN + fastText forward pass).
    Encode,
    /// Candidate search (ANN / flat / q-gram).
    Search,
}

impl Stage {
    /// Stable lower-case name used in `504` response metadata.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admit => "admit",
            Stage::Encode => "encode",
            Stage::Search => "search",
        }
    }
}

/// The faults applied to one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageFaults {
    /// Latency injected before admission checks, in milliseconds.
    pub admit_latency_ms: u64,
    /// Latency injected before the encode stage.
    pub encode_latency_ms: u64,
    /// Latency injected before the search stage.
    pub search_latency_ms: u64,
    /// The primary (PQ/ANN) backend reports an error for this request.
    pub backend_error: bool,
    /// The primary backend answers with poisoned (NaN) scores.
    pub poison: bool,
    /// The search stage panics mid-request (containment drill).
    pub panic_in_search: bool,
    /// The request is refused at the door (`429`) as if the queue were
    /// full — exercises the shed path without needing real overload.
    pub shed: bool,
    /// `(target, ms)`: inject `ms` of latency into shard
    /// `target % num_shards` during this request's scatter-gather.
    /// Ignored by the unsharded path.
    pub shard_latency: Option<(u32, u64)>,
    /// Panic inside shard `target % num_shards` during scatter-gather
    /// (per-shard containment drill). Ignored by the unsharded path.
    pub shard_panic: Option<u32>,
}

/// How faults are generated across requests.
#[derive(Debug, Clone)]
pub enum FaultConfig {
    /// Replay `plan[i % plan.len()]` for request `i`. An empty plan
    /// injects nothing.
    Scripted {
        /// Per-request fault schedule, cycled.
        plan: Vec<StageFaults>,
        /// Advance the deadline clock instead of sleeping.
        virtual_time: bool,
    },
    /// Derive request `i`'s faults from an [`StdRng`] seeded with
    /// `seed ^ i`-derived material. Same seed, same faults, always.
    Random {
        /// Base seed for the per-request generators.
        seed: u64,
        /// Probability a stage gets injected latency.
        latency_prob: f64,
        /// Upper bound (exclusive) on injected latency per stage.
        max_latency_ms: u64,
        /// Probability the primary backend errors.
        backend_error_prob: f64,
        /// Probability the primary backend poisons its scores.
        poison_prob: f64,
        /// Probability the search stage panics.
        panic_prob: f64,
        /// Probability the request is shed at admission.
        shed_prob: f64,
        /// Probability one shard misbehaves during scatter-gather
        /// (split evenly between a stall and a panic; the target shard
        /// is drawn uniformly).
        shard_fault_prob: f64,
        /// Advance the deadline clock instead of sleeping.
        virtual_time: bool,
    },
}

/// Resolves [`FaultConfig`] into per-request [`StageFaults`].
#[derive(Debug, Clone)]
pub struct FaultLayer {
    config: FaultConfig,
}

impl FaultLayer {
    /// Wraps a fault configuration.
    pub fn new(config: FaultConfig) -> Self {
        FaultLayer { config }
    }

    /// Whether injected latency should advance virtual time.
    pub fn virtual_time(&self) -> bool {
        match &self.config {
            FaultConfig::Scripted { virtual_time, .. }
            | FaultConfig::Random { virtual_time, .. } => *virtual_time,
        }
    }

    /// The faults for request number `index` (assigned by accept order).
    pub fn for_request(&self, index: u64) -> StageFaults {
        match &self.config {
            FaultConfig::Scripted { plan, .. } => {
                if plan.is_empty() {
                    StageFaults::default()
                } else {
                    plan[(index % plan.len() as u64) as usize]
                }
            }
            FaultConfig::Random {
                seed,
                latency_prob,
                max_latency_ms,
                backend_error_prob,
                poison_prob,
                panic_prob,
                shed_prob,
                shard_fault_prob,
                ..
            } => {
                // Mix the index through a distinct odd constant so
                // consecutive requests land on unrelated streams even
                // for adjacent seeds.
                let mixed = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = StdRng::seed_from_u64(mixed);
                let latency = |rng: &mut StdRng| {
                    if *max_latency_ms > 0 && rng.gen_bool(*latency_prob) {
                        rng.gen_range(0..*max_latency_ms)
                    } else {
                        0
                    }
                };
                let mut faults = StageFaults {
                    admit_latency_ms: latency(&mut rng),
                    encode_latency_ms: latency(&mut rng),
                    search_latency_ms: latency(&mut rng),
                    backend_error: rng.gen_bool(*backend_error_prob),
                    poison: rng.gen_bool(*poison_prob),
                    panic_in_search: rng.gen_bool(*panic_prob),
                    // Drawn last, and only when enabled: seeds chosen
                    // before the shed fault existed replay unchanged.
                    shed: *shed_prob > 0.0 && rng.gen_bool(*shed_prob),
                    shard_latency: None,
                    shard_panic: None,
                };
                // Shard faults are drawn after everything else and only
                // when enabled, for the same stream-stability reason.
                if *shard_fault_prob > 0.0 && rng.gen_bool(*shard_fault_prob) {
                    let target = rng.gen_range(0..4096u64) as u32;
                    if rng.gen_bool(0.5) {
                        faults.shard_panic = Some(target);
                    } else {
                        let ms = rng.gen_range(0..(*max_latency_ms).max(1));
                        faults.shard_latency = Some((target, ms));
                    }
                }
                faults
            }
        }
    }
}

/// Tracks one request's deadline budget in real plus virtual time.
///
/// Real time accrues from [`Instant::now`]; virtual time accrues only
/// through [`DeadlineClock::advance_ms`] when the clock was built with
/// `virtual_only`. Degradation decisions read
/// [`DeadlineClock::frac_remaining`], the fraction of budget still
/// unspent.
///
/// Virtual time lives in a shared `Arc<AtomicU64>` of nanoseconds so
/// the same counter can drive a request's trace clock
/// ([`emblookup_obs::TraceClock::Virtual`]): injected latency then
/// shows up identically in deadline accounting and captured span
/// durations, bit-for-bit across pool widths.
#[derive(Debug)]
pub struct DeadlineClock {
    start: Instant,
    budget_ms: u64,
    // lint: atomic(counter) virtual clock; monotone accrual, no ordering contract
    virtual_ns: Arc<AtomicU64>,
    virtual_only: bool,
}

impl DeadlineClock {
    /// Starts a clock with `budget_ms` of budget. With `virtual_only`,
    /// injected latency advances the clock instead of sleeping.
    pub fn new(budget_ms: u64, virtual_only: bool) -> Self {
        Self::with_virtual_ns(budget_ms, virtual_only, Arc::new(AtomicU64::new(0)))
    }

    /// Like [`DeadlineClock::new`], but accruing virtual time into a
    /// caller-provided shared nanosecond counter.
    pub fn with_virtual_ns(budget_ms: u64, virtual_only: bool, virtual_ns: Arc<AtomicU64>) -> Self {
        DeadlineClock {
            start: Instant::now(),
            budget_ms,
            virtual_ns,
            virtual_only,
        }
    }

    /// The shared virtual nanosecond counter behind this clock.
    pub fn virtual_ns_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.virtual_ns)
    }

    /// True when injected latency advances the clock instead of
    /// sleeping (the clock was built with `virtual_only`).
    pub fn is_virtual(&self) -> bool {
        self.virtual_only
    }

    /// Applies `ms` of injected latency: virtually (clock advance) or
    /// physically (sleep), per construction.
    pub fn advance_ms(&self, ms: u64) {
        if ms == 0 {
            return;
        }
        if self.virtual_only {
            self.virtual_ns
                .fetch_add(ms.saturating_mul(1_000_000), Ordering::Relaxed);
        } else {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }

    /// Total budget in milliseconds.
    pub fn budget_ms(&self) -> u64 {
        self.budget_ms
    }

    /// Virtual milliseconds accrued so far.
    pub fn virtual_elapsed_ms(&self) -> u64 {
        self.virtual_ns.load(Ordering::Relaxed) / 1_000_000
    }

    /// Budget left counting only deterministic inputs: in virtual mode
    /// this ignores real elapsed time, so the value is reproducible
    /// across runs and pool widths (span annotations use it). In real
    /// mode it equals [`DeadlineClock::remaining_ms`].
    pub fn deterministic_remaining_ms(&self) -> u64 {
        if self.virtual_only {
            self.budget_ms.saturating_sub(self.virtual_elapsed_ms())
        } else {
            self.remaining_ms()
        }
    }

    /// Elapsed real plus virtual milliseconds.
    pub fn elapsed_ms(&self) -> u64 {
        let real = self.start.elapsed().as_millis() as u64;
        real.saturating_add(self.virtual_elapsed_ms())
    }

    /// Milliseconds of budget left (saturating at zero).
    pub fn remaining_ms(&self) -> u64 {
        self.budget_ms.saturating_sub(self.elapsed_ms())
    }

    /// Fraction of budget remaining, in `[0, 1]`.
    pub fn frac_remaining(&self) -> f64 {
        if self.budget_ms == 0 {
            return 0.0;
        }
        self.remaining_ms() as f64 / self.budget_ms as f64
    }

    /// True once the budget is exhausted.
    pub fn expired(&self) -> bool {
        self.remaining_ms() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plan_cycles() {
        let plan = vec![
            StageFaults { encode_latency_ms: 5, ..StageFaults::default() },
            StageFaults { backend_error: true, ..StageFaults::default() },
        ];
        let layer = FaultLayer::new(FaultConfig::Scripted { plan, virtual_time: true });
        assert_eq!(layer.for_request(0).encode_latency_ms, 5);
        assert!(layer.for_request(1).backend_error);
        assert_eq!(layer.for_request(2).encode_latency_ms, 5);
    }

    #[test]
    fn empty_scripted_plan_injects_nothing() {
        let layer = FaultLayer::new(FaultConfig::Scripted { plan: vec![], virtual_time: true });
        assert_eq!(layer.for_request(7), StageFaults::default());
    }

    #[test]
    fn random_faults_are_reproducible_and_seed_sensitive() {
        let make = |seed| {
            FaultLayer::new(FaultConfig::Random {
                seed,
                latency_prob: 0.5,
                max_latency_ms: 100,
                backend_error_prob: 0.2,
                poison_prob: 0.2,
                panic_prob: 0.1,
                shed_prob: 0.0,
                shard_fault_prob: 0.0,
                virtual_time: true,
            })
        };
        let a: Vec<_> = (0..64).map(|i| make(7).for_request(i)).collect();
        let b: Vec<_> = (0..64).map(|i| make(7).for_request(i)).collect();
        let c: Vec<_> = (0..64).map(|i| make(8).for_request(i)).collect();
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds should differ somewhere in 64 draws");
    }

    #[test]
    fn virtual_clock_advances_without_sleeping() {
        let clock = DeadlineClock::new(100, true);
        let wall = Instant::now();
        clock.advance_ms(60);
        assert!(wall.elapsed().as_millis() < 50, "virtual advance must not sleep");
        assert!(clock.elapsed_ms() >= 60);
        assert!(clock.remaining_ms() <= 40);
        assert!(!clock.expired());
        clock.advance_ms(60);
        assert!(clock.expired());
        assert!((clock.frac_remaining() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn real_clock_sleeps() {
        let clock = DeadlineClock::new(1000, false);
        let wall = Instant::now();
        clock.advance_ms(20);
        assert!(wall.elapsed().as_millis() >= 20, "real mode must actually wait");
    }

    #[test]
    fn shared_virtual_ns_drives_deterministic_remaining() {
        let ns = Arc::new(AtomicU64::new(0));
        let clock = DeadlineClock::with_virtual_ns(100, true, Arc::clone(&ns));
        clock.advance_ms(30);
        assert_eq!(ns.load(Ordering::Relaxed), 30_000_000, "trace clock sees the advance");
        assert_eq!(clock.virtual_elapsed_ms(), 30);
        assert_eq!(clock.deterministic_remaining_ms(), 70);
        ns.fetch_add(80_000_000, Ordering::Relaxed);
        assert_eq!(clock.deterministic_remaining_ms(), 0, "external advances count too");
        assert!(clock.expired());
    }

    #[test]
    fn shed_fault_draw_does_not_disturb_existing_streams() {
        let make = |shed_prob| {
            FaultLayer::new(FaultConfig::Random {
                seed: 11,
                latency_prob: 0.5,
                max_latency_ms: 100,
                backend_error_prob: 0.2,
                poison_prob: 0.2,
                panic_prob: 0.1,
                shed_prob,
                shard_fault_prob: 0.0,
                virtual_time: true,
            })
        };
        let without: Vec<_> = (0..64).map(|i| make(0.0).for_request(i)).collect();
        let with: Vec<_> = (0..64).map(|i| make(0.5).for_request(i)).collect();
        assert!(without.iter().all(|f| !f.shed), "prob 0 must never shed");
        assert!(with.iter().any(|f| f.shed), "prob 0.5 sheds somewhere in 64 draws");
        for (a, b) in without.iter().zip(&with) {
            assert_eq!(
                StageFaults { shed: false, ..*b },
                *a,
                "non-shed fields must replay identically with shed enabled"
            );
        }
    }

    #[test]
    fn shard_fault_draw_does_not_disturb_existing_streams() {
        let make = |shard_fault_prob| {
            FaultLayer::new(FaultConfig::Random {
                seed: 11,
                latency_prob: 0.5,
                max_latency_ms: 100,
                backend_error_prob: 0.2,
                poison_prob: 0.2,
                panic_prob: 0.1,
                shed_prob: 0.3,
                shard_fault_prob,
                virtual_time: true,
            })
        };
        let without: Vec<_> = (0..64).map(|i| make(0.0).for_request(i)).collect();
        let with: Vec<_> = (0..64).map(|i| make(0.5).for_request(i)).collect();
        assert!(
            without.iter().all(|f| f.shard_latency.is_none() && f.shard_panic.is_none()),
            "prob 0 must never inject shard faults"
        );
        assert!(with.iter().any(|f| f.shard_latency.is_some()), "prob 0.5 stalls a shard");
        assert!(with.iter().any(|f| f.shard_panic.is_some()), "prob 0.5 panics a shard");
        for (a, b) in without.iter().zip(&with) {
            assert_eq!(
                StageFaults { shard_latency: None, shard_panic: None, ..*b },
                *a,
                "non-shard fields must replay identically with shard faults enabled"
            );
        }
    }

    #[test]
    fn zero_budget_is_always_expired() {
        let clock = DeadlineClock::new(0, true);
        assert!(clock.expired());
        assert!((clock.frac_remaining()).abs() < f64::EPSILON);
    }
}
