//! # emblookup-serve
//!
//! The hardened serving layer for EmbLookup: a zero-dependency
//! HTTP/1.1 server that keeps answering — degraded if it must — under
//! overload, deadline pressure, and injected faults.
//!
//! | Endpoint | Behaviour |
//! |---|---|
//! | `POST /lookup` | single-query lookup through the degradation ladder |
//! | `POST /lookup/bulk` | batched lookup, full fidelity or `504` |
//! | `GET /healthz` | liveness, answered inline |
//! | `GET /metrics` | Prometheus text exposition of the server's registry |
//! | `GET /debug/traces` | retained (tail-sampled) span trees + recent trace ids |
//! | `GET /debug/traces/chrome` | retained traces as Chrome `trace_event` JSON (Perfetto) |
//! | `GET /debug/traces/<id>` | one trace by 16-hex-digit id, retained or still in the ring |
//!
//! Three robustness mechanisms compose:
//!
//! * **Admission control** — `POST` work enters the worker pool through
//!   a bounded injector; at capacity the server sheds with `429` +
//!   `Retry-After` instead of queueing without bound.
//! * **Deadlines** — every request carries a budget (header
//!   `x-emblookup-deadline-ms` or the config default), checked at stage
//!   boundaries; exhaustion yields `504` naming the stage.
//! * **Degradation ladder** — as budget shrinks (or the primary backend
//!   errors/poisons), the answer steps down: PQ/ANN → exact flat search
//!   on a capped set → q-gram string similarity. The rung is tagged in
//!   the response and counted in `serve.degraded.*`.
//!
//! With [`ServeConfig::shards`] `> 1` two more compose on top:
//!
//! * **Scatter-gather sharding** — the entity set is hash-partitioned
//!   into `N` shards at startup; the full rung fans out over every live
//!   shard (each under a slice of the request's budget) and merges
//!   per-shard top-k deterministically. Connections are HTTP/1.1
//!   keep-alive: one connection serves many requests in order.
//! * **Circuit breakers** — a per-shard [`ShardBreaker`] ejects a shard
//!   after consecutive failures and probes it back in (responses built
//!   from a subset of shards carry `x-emblookup-shards: k/N`); a
//!   whole-service [`OverloadPin`] pins sustained deadline-miss storms
//!   to the q-gram rung, tagged `x-emblookup-overload: pinned`.
//!
//! A deterministic fault-injection harness ([`faults`]) drives all of
//! this in tests: scripted or seeded-random stage latency, backend
//! errors, poisoned scores, and in-search panics, replayable
//! bit-for-bit. Faults are configured only through [`ServeConfig`] and
//! default to off.
//!
//! ```no_run
//! use emblookup_core::{EmbLookup, EmbLookupConfig};
//! use emblookup_kg::{generate, SynthKgConfig};
//! use emblookup_serve::{Server, ServeConfig};
//!
//! let synth = generate(SynthKgConfig::small(42));
//! let service = EmbLookup::train_on(&synth.kg, EmbLookupConfig::fast(42));
//! let server = Server::start(service, &synth.kg, ServeConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! ```

#![warn(missing_docs)]

pub mod breaker;
pub mod client;
pub mod faults;
pub mod http;
pub mod json;
pub mod ladder;
pub mod server;

pub use breaker::{BreakerState, OverloadPin, PinEvent, ShardBreaker, Transition};
pub use faults::{DeadlineClock, FaultConfig, FaultLayer, Stage, StageFaults};
pub use ladder::{Ladder, Rung};
pub use server::Server;

/// Server configuration. The default is safe for production use:
/// faults off, bounded queue, conservative deadline.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; `"127.0.0.1:0"` picks a free port.
    pub addr: String,
    /// Worker threads for the request pool; `0` means
    /// [`emblookup_pool::default_threads`].
    pub workers: usize,
    /// Bounded-injector capacity: queued-but-unstarted requests beyond
    /// this are shed with `429`.
    pub queue_cap: usize,
    /// Deadline budget when the client sends no
    /// `x-emblookup-deadline-ms` header, in milliseconds.
    pub default_deadline_ms: u64,
    /// Upper clamp on client-requested deadlines.
    pub max_deadline_ms: u64,
    /// Upper clamp on requested `k`.
    pub max_k: usize,
    /// Entities covered by the flat and q-gram fallback rungs.
    pub fallback_cap: usize,
    /// Maximum queries per bulk request.
    pub max_bulk: usize,
    /// Socket read timeout, in milliseconds.
    pub read_timeout_ms: u64,
    /// Fault injection plan; `None` (the default) injects nothing.
    pub faults: Option<FaultConfig>,
    /// Flight-recorder capacity: every request's span tree lands in a
    /// ring of this many slots, overwriting the oldest.
    pub trace_ring_cap: usize,
    /// Tail-sampled traces retained per trigger class (slow / shed /
    /// degraded / error / panic); total retention is bounded at five
    /// times this.
    pub trace_retain_per_trigger: usize,
    /// Slow-trace threshold in milliseconds; `0` (the default) adapts
    /// to twice the observed p99 once 64 requests have completed.
    pub slow_trace_ms: u64,
    /// Number of hash-partitioned index shards the full rung
    /// scatter-gathers; `1` (the default) serves the single unsharded
    /// index.
    pub shards: usize,
    /// Consecutive failures (deadline-miss / error / panic) that open a
    /// shard's circuit breaker.
    pub breaker_threshold: u32,
    /// Requests an open breaker waits before admitting one half-open
    /// probe.
    pub breaker_cooldown: u64,
    /// Consecutive whole-request deadline misses that pin the service
    /// to the q-gram rung; `0` disables the overload pin.
    pub overload_threshold: u32,
    /// Every n-th pinned request retries the full pipeline; success
    /// unpins.
    pub overload_probe_interval: u64,
    /// Base `Retry-After` for shed responses, in milliseconds; the
    /// actual value is jittered deterministically over
    /// `[base/2, 3*base/2]`.
    pub retry_after_ms: u64,
    /// Seed for the shed-retry jitter stream.
    pub retry_jitter_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_cap: 64,
            default_deadline_ms: 250,
            max_deadline_ms: 10_000,
            max_k: 100,
            fallback_cap: 1024,
            max_bulk: 1024,
            read_timeout_ms: 2000,
            faults: None,
            trace_ring_cap: 256,
            trace_retain_per_trigger: 8,
            slow_trace_ms: 0,
            shards: 1,
            breaker_threshold: 3,
            breaker_cooldown: 8,
            overload_threshold: 3,
            overload_probe_interval: 4,
            retry_after_ms: 1000,
            retry_jitter_seed: 0xEB10,
        }
    }
}
