//! Minimal HTTP/1.1 framing on `std::net::TcpStream`.
//!
//! The server speaks HTTP/1.1 keep-alive: a connection carries a
//! sequence of requests, each framed by `content-length`, answered in
//! order. Because [`read_request`] consumes the stream byte-at-a-time
//! and never reads past one request's body, a client may *pipeline* —
//! write several requests back-to-back before reading — and the framing
//! stays unambiguous. A request carrying `Connection: close` (or a
//! response serialized with `keep_alive = false`) ends the connection
//! after that exchange. Header and body sizes are capped so a malformed
//! or hostile peer cannot grow buffers without bound.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, path, lower-cased headers, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ... (upper-case as sent).
    pub method: String,
    /// The request target, e.g. `/lookup`.
    pub path: String,
    /// Header `(name, value)` pairs with names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (`content-length` framed).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request from `stream`.
///
/// # Errors
/// A static description of the framing problem (oversized head, missing
/// terminator, bad content length, body larger than `max_body`).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, &'static str> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Byte-at-a-time until CRLFCRLF: requests here are tiny and the
    // simplicity beats a lookahead buffer that must not over-read the
    // body.
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err("connection closed before request head"),
            Ok(_) => head.push(byte[0]),
            // A timeout with nothing read yet is an idle keep-alive
            // connection going away, not a framing error.
            Err(_) if head.is_empty() => return Err("connection closed before request head"),
            Err(_) => return Err("read failed or timed out"),
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err("request head too large");
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| "request head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let path = parts.next().ok_or("missing path")?.to_string();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or("malformed header line")?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| "bad content-length")?
        .unwrap_or(0);
    if content_length > max_body {
        return Err("request body too large");
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|_| "truncated request body")?;
    Ok(Request { method, path, headers, body })
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Additional headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            extra_headers: Vec::new(),
            body,
        }
    }

    /// Adds one extra header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.extra_headers.push((name.to_string(), value.to_string()));
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serializes `resp` onto `stream` and flushes, advertising
/// `connection: keep-alive` or `close` per `keep_alive`. Write errors
/// are swallowed: the peer may have hung up, and the connection's fate
/// is already decided either way.
pub fn write_response(stream: &mut TcpStream, resp: &Response, keep_alive: bool) {
    let mut out = String::with_capacity(resp.body.len() + 128);
    out.push_str("HTTP/1.1 ");
    out.push_str(&resp.status.to_string());
    out.push(' ');
    out.push_str(reason(resp.status));
    out.push_str("\r\ncontent-type: ");
    out.push_str(resp.content_type);
    out.push_str("\r\ncontent-length: ");
    out.push_str(&resp.body.len().to_string());
    for (name, value) in &resp.extra_headers {
        out.push_str("\r\n");
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
    }
    out.push_str(if keep_alive {
        "\r\nconnection: keep-alive\r\n\r\n"
    } else {
        "\r\nconnection: close\r\n\r\n"
    });
    out.push_str(&resp.body);
    let _ = stream.write_all(out.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, &'static str> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let out = read_request(&mut conn, max_body);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /lookup HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"q\":\"a\"}";
        let req = roundtrip(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/lookup");
        assert_eq!(req.header("content-length"), Some("9"));
        assert_eq!(req.body, b"{\"q\":\"a\"}");
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = b"POST /lookup HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        assert_eq!(roundtrip(raw, 10).err(), Some("request body too large"));
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n", 0).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }
}
