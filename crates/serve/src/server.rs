//! The hardened HTTP server: admission control, deadlines, the
//! degradation ladder, and per-request panic containment.
//!
//! ## Threading model
//!
//! The accept thread only accepts: each TCP connection gets its own
//! connection thread that reads HTTP/1.1 keep-alive requests in order
//! (pipelining-safe, because [`read_request`] never reads past one
//! request's body). Tiny control-plane GETs (`/healthz`, `/metrics`,
//! `/debug/traces*`) are answered inline on the connection thread so
//! they can never be shed behind data-plane load. `POST` bodies are
//! parsed and then submitted to the shared worker [`Pool`]'s **bounded
//! injector** ([`Pool::try_submit`]): when the queue is at capacity the
//! submission fails synchronously and the connection thread answers
//! `429` with a deterministically jittered `Retry-After` — load is shed
//! at the door, not buffered into an unbounded backlog. Admitted
//! requests compute their response on a worker, hand it back through a
//! condvar slot, and the connection thread writes it — responses stay
//! in request order per connection.
//!
//! The pool rides in an `Arc` held by the accept thread and every
//! connection thread; handler tasks capture only [`ServerState`], so
//! the last `Arc` is always dropped by a serve-side thread, never by a
//! pool worker (no self-join). Request indices are assigned in arrival
//! order under the `seq` counter — the anchor for deterministic fault
//! replay.
//!
//! ## Sharding, breakers, and the overload pin
//!
//! With `ServeConfig::shards > 1` the entity set is hash-partitioned at
//! startup into a [`ShardedIndex`]; the full rung then scatter-gathers
//! every live shard on the global pool, each under a private slice of
//! the request's remaining deadline budget, and merges per-shard top-k
//! deterministically (`total_cmp`, ties on entity id). A per-shard
//! [`ShardBreaker`] ejects a shard after consecutive failures and
//! half-open-probes it back in; responses assembled from a strict
//! subset of shards carry `x-emblookup-shards: k/N`. A whole-service
//! [`OverloadPin`] watches consecutive `/lookup` deadline misses and
//! pins sustained overload to the ladder's string rung — cheap answers
//! beat timeouts — with periodic full-pipeline probes to unpin.
//!
//! ## Request lifecycle
//!
//! Every admitted request resolves to exactly one of `200`, `400`,
//! `500` (contained panic), or `504` (deadline); rejected requests get
//! `429`. The handler body runs under `catch_unwind`, so a panicking
//! backend costs one response, never the process.
//!
//! ## Tracing
//!
//! A [`Trace`] is minted per request on the accept thread (id from the
//! `x-emblookup-trace-id` header or derived from the request index) and
//! threaded explicitly through the handler: every stage gets a child
//! span, the full-rung search descends into the ANN backend, and bulk
//! requests fan `pool.chunk` spans out of the search stage. Completed
//! trees always land in the flight-recorder ring; slow / shed /
//! degraded / errored / panicked requests are additionally tail-sampled
//! into the retained buffer served by `GET /debug/traces`. Under the
//! virtual-time fault harness the trace clock shares the deadline
//! clock's nanosecond counter, so captured durations are deterministic.

use crate::breaker::{BreakerState, OverloadPin, ShardBreaker, Transition};
use crate::faults::{DeadlineClock, FaultLayer, Stage, StageFaults};
use crate::http::{read_request, write_response, Request, Response};
use crate::json::{self, Json};
use crate::ladder::{Ladder, Rung};
use crate::ServeConfig;
use emblookup_core::{merge_topk, EmbLookup, EntityIndex, ShardedIndex};
use emblookup_kg::{EntityId, KnowledgeGraph};
use emblookup_obs::names;
use emblookup_obs::{
    format_trace_id, parse_trace_id, trace_id_from_index, traces_to_chrome_json, AnnoValue,
    Counter, Gauge, Histogram, MetricsRegistry, RetainedTrace, Trace, TraceClock, TraceData,
    TraceHub, TraceSpan, Trigger,
};
use emblookup_pool::{BoundedQueue, Pool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Below this fraction of remaining budget the full PQ/ANN rung is
/// skipped in favour of exact flat search.
const FLAT_FRAC: f64 = 0.5;
/// Below this fraction even encoding is skipped; the q-gram string
/// rung answers directly.
const QGRAM_FRAC: f64 = 0.15;
/// Cap on request bodies.
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Eagerly-created handles for every `serve.*` metric, so `/metrics`
/// exports the full family (at zero) from the first scrape.
struct ServeMetrics {
    requests: Arc<Counter>,
    admitted: Arc<Counter>,
    shed: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    latency: Arc<Histogram>,
    errors: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    degraded_flat: Arc<Counter>,
    degraded_qgram: Arc<Counter>,
    panics: Arc<Counter>,
    connections: Arc<Counter>,
    shards_live: Arc<Gauge>,
    partial: Arc<Counter>,
    breaker_opened: Arc<Counter>,
    breaker_probes: Arc<Counter>,
    breaker_readmitted: Arc<Counter>,
    overload_pinned: Arc<Counter>,
}

impl ServeMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        ServeMetrics {
            requests: registry.counter(names::SERVE_REQUESTS),
            admitted: registry.counter(names::SERVE_ADMITTED),
            shed: registry.counter(names::SERVE_SHED),
            queue_depth: registry.gauge(names::SERVE_QUEUE_DEPTH),
            latency: registry.histogram(names::SERVE_LATENCY),
            errors: registry.counter(names::SERVE_ERRORS),
            deadline_exceeded: registry.counter(names::SERVE_DEADLINE_EXCEEDED),
            degraded_flat: registry.counter(names::SERVE_DEGRADED_FLAT),
            degraded_qgram: registry.counter(names::SERVE_DEGRADED_QGRAM),
            panics: registry.counter(names::SERVE_PANICS),
            connections: registry.counter(names::SERVE_CONNECTIONS),
            shards_live: registry.gauge(names::SERVE_SHARDS_LIVE),
            partial: registry.counter(names::SERVE_PARTIAL),
            breaker_opened: registry.counter(names::SERVE_BREAKER_OPENED),
            breaker_probes: registry.counter(names::SERVE_BREAKER_PROBES),
            breaker_readmitted: registry.counter(names::SERVE_BREAKER_READMITTED),
            overload_pinned: registry.counter(names::SERVE_OVERLOAD_PINNED),
        }
    }
}

/// Locks a serve-side mutex, ignoring poison: everything behind these
/// mutexes is plain breaker/bookkeeping state, and handler panics are
/// already contained by `catch_unwind` upstream.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The sharded serving state: the partitioned index plus one circuit
/// breaker per shard.
struct ShardServing {
    index: ShardedIndex,
    breakers: Mutex<Vec<ShardBreaker>>,
}

/// Everything the request handlers need, shared between the accept
/// thread and the pool workers.
struct ServerState {
    service: EmbLookup,
    ladder: Ladder,
    /// Entity labels indexed by dense entity id, for response bodies.
    labels: Vec<String>,
    faults: Option<FaultLayer>,
    config: ServeConfig,
    registry: Arc<MetricsRegistry>,
    metrics: ServeMetrics,
    /// Flight recorder + tail sampler every completed trace publishes to.
    hub: TraceHub,
    /// Request indices in arrival order; the fault layer's replay key.
    // lint: atomic(counter) accept-order index allocator
    seq: AtomicU64,
    /// Hash-partitioned shards + per-shard breakers when `shards > 1`.
    sharded: Option<ShardServing>,
    /// Whole-service breaker pinning sustained overload to the string rung.
    overload: Mutex<OverloadPin>,
}

impl ServerState {
    /// Slow-trace threshold in clock nanoseconds: the configured value,
    /// or — when `slow_trace_ms` is 0 — twice the observed latency p99
    /// once 64 requests have completed (nothing is "slow" before that).
    fn slow_threshold_ns(&self) -> u64 {
        let ms = self.config.slow_trace_ms;
        if ms > 0 {
            return ms.saturating_mul(1_000_000);
        }
        if self.metrics.latency.count() >= 64 {
            self.metrics.latency.snapshot().p99().saturating_mul(2)
        } else {
            u64::MAX
        }
    }
}

/// The per-request trace context, minted on the accept thread so span
/// ids follow accept order, then moved into the handler task.
struct TraceCtx {
    /// The `serve.request` root span; stage spans hang off it.
    root: TraceSpan,
    /// The shared virtual nanosecond counter when the fault harness
    /// runs in virtual time; the deadline clock accrues into it so
    /// injected latency shows up in span durations.
    // lint: atomic(counter) virtual clock handle; see DeadlineClock
    virtual_ns: Option<Arc<AtomicU64>>,
}

/// A running server. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop and joins the worker pool.
pub struct Server {
    addr: SocketAddr,
    // lint: atomic(flag) one-way stop publication to the accept loop
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    registry: Arc<MetricsRegistry>,
}

impl Server {
    /// Binds `config.addr`, builds the degradation ladder, and starts
    /// the accept loop. Metrics go to the process-global registry.
    ///
    /// # Errors
    /// Propagates socket bind/configuration failures.
    pub fn start(service: EmbLookup, kg: &KnowledgeGraph, config: ServeConfig) -> io::Result<Server> {
        let registry = Arc::new(MetricsRegistry::new());
        Self::start_with_registry(service, kg, config, registry)
    }

    /// Like [`Server::start`] but exporting into a caller-supplied
    /// registry — tests use a private registry per server instance to
    /// assert exact counter values without cross-test interference.
    ///
    /// # Errors
    /// Propagates socket bind/configuration failures.
    pub fn start_with_registry(
        service: EmbLookup,
        kg: &KnowledgeGraph,
        config: ServeConfig,
        registry: Arc<MetricsRegistry>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let ladder = Ladder::build(&service, kg, config.fallback_cap);
        let labels: Vec<String> = (0..kg.num_entities())
            .map(|i| kg.label(EntityId(i as u32)).to_string())
            .collect();
        let metrics = ServeMetrics::new(&registry);
        metrics.queue_depth.set(0.0);
        let faults = config.faults.clone().map(FaultLayer::new);
        let workers = if config.workers == 0 {
            emblookup_pool::default_threads()
        } else {
            config.workers
        };
        let queue_cap = config.queue_cap;
        let hub = TraceHub::new(config.trace_ring_cap, config.trace_retain_per_trigger, &registry);
        let sharded = if config.shards > 1 {
            // Built single-threaded like the ladder: startup cost, paid
            // once, in exchange for a deterministic partition.
            let index = ShardedIndex::build(
                service.model(),
                kg,
                service.model().config().compression,
                config.shards,
                1,
            );
            let breakers = (0..index.num_shards())
                .map(|_| ShardBreaker::new(config.breaker_threshold, config.breaker_cooldown))
                .collect();
            Some(ShardServing { index, breakers: Mutex::new(breakers) })
        } else {
            None
        };
        metrics.shards_live.set(config.shards.max(1) as f64);
        let overload = Mutex::new(OverloadPin::new(
            config.overload_threshold,
            config.overload_probe_interval,
        ));
        let state = Arc::new(ServerState {
            service,
            ladder,
            labels,
            faults,
            config,
            registry: Arc::clone(&registry),
            metrics,
            hub,
            seq: AtomicU64::new(0),
            sharded,
            overload,
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("emblookup-serve-accept".to_string())
            .spawn(move || {
                // Shared with every connection thread through an Arc;
                // handler tasks capture only `ServerState`, so the last
                // Arc (and the worker join) always lands on a serve
                // thread, never on a pool worker.
                let pool =
                    Arc::new(Pool::with_threads_bounded(workers, BoundedQueue { cap: queue_cap }));
                accept_loop(&listener, &state, &pool, &shutdown_flag);
            })?;
        Ok(Server {
            addr,
            shutdown,
            handle: Some(handle),
            registry,
        })
    }

    /// The bound address (useful with `addr = "127.0.0.1:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server exports from `/metrics`.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Stops accepting, joins the accept thread (which joins the pool).
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    pool: &Arc<Pool>,
    shutdown: &Arc<AtomicBool>,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        state.metrics.connections.inc();
        let conn_state = Arc::clone(state);
        let conn_pool = Arc::clone(pool);
        let conn_shutdown = Arc::clone(shutdown);
        // A failed spawn (fd/thread exhaustion) drops the connection —
        // the client sees a reset and retries; the server stays up.
        let _ = std::thread::Builder::new()
            .name("emblookup-serve-conn".to_string())
            .spawn(move || {
                connection_loop(stream, &conn_state, &conn_pool, &conn_shutdown);
            });
    }
}

/// Serves one keep-alive connection: reads requests in order until the
/// client closes, asks for `Connection: close`, errors, or shutdown.
fn connection_loop(
    mut stream: TcpStream,
    state: &Arc<ServerState>,
    pool: &Arc<Pool>,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        state.config.read_timeout_ms.max(1),
    )));
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let req = match read_request(&mut stream, MAX_BODY_BYTES) {
            Ok(req) => req,
            // An idle keep-alive peer hanging up (or timing out) between
            // requests is the protocol working, not an error.
            Err("connection closed before request head") => return,
            Err(why) => {
                state.metrics.errors.inc();
                let body = format!("{{\"error\":\"{}\"}}", json::escape(why));
                write_response(&mut stream, &Response::json(400, body), false);
                return;
            }
        };
        state.metrics.requests.inc();
        // HTTP/1.1 defaults to persistent; only an explicit close opts out.
        let keep_alive = !req
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        match (req.method.as_str(), req.path.as_str()) {
            // Control plane: answered inline, never queued, never shed.
            ("GET", "/healthz") => {
                write_response(
                    &mut stream,
                    &Response::json(200, "{\"status\":\"ok\"}".to_string()),
                    keep_alive,
                );
            }
            ("GET", "/metrics") => {
                state
                    .metrics
                    .queue_depth
                    .set(pool.detached_depth() as f64);
                let body = state.registry.snapshot().to_prometheus();
                write_response(&mut stream, &Response::text(200, body), keep_alive);
            }
            ("GET", "/debug/traces") => {
                write_response(
                    &mut stream,
                    &Response::json(200, debug_traces_json(state)),
                    keep_alive,
                );
            }
            ("GET", "/debug/traces/chrome") => {
                let traces: Vec<TraceData> = state
                    .hub
                    .sampler
                    .retained()
                    .iter()
                    .map(|r| (*r.trace).clone())
                    .collect();
                write_response(
                    &mut stream,
                    &Response::json(200, traces_to_chrome_json(&traces)),
                    keep_alive,
                );
            }
            ("GET", path) if path.starts_with("/debug/traces/") => {
                let found = path
                    .strip_prefix("/debug/traces/")
                    .and_then(parse_trace_id)
                    .and_then(|id| state.hub.find(id));
                let resp = match found {
                    Some(r) => Response::json(200, retained_trace_json(&r)),
                    None => Response::json(404, "{\"error\":\"trace not found\"}".to_string()),
                };
                write_response(&mut stream, &resp, keep_alive);
            }
            ("POST", "/lookup") | ("POST", "/lookup/bulk") => {
                admit(state, pool, req, &mut stream, keep_alive);
            }
            ("GET", _) | ("POST", _) => {
                write_response(
                    &mut stream,
                    &Response::json(404, "{\"error\":\"not found\"}".to_string()),
                    keep_alive,
                );
            }
            _ => {
                write_response(
                    &mut stream,
                    &Response::json(405, "{\"error\":\"method not allowed\"}".to_string()),
                    keep_alive,
                );
            }
        }
        if !keep_alive {
            return;
        }
    }
}

/// Mints the request's trace on the accept thread: id from the client
/// header (else derived from the accept index), clock virtual when the
/// fault harness runs in virtual time.
fn mint_trace(req: &Request, idx: u64, virtual_time: bool) -> TraceCtx {
    let id = req
        .header("x-emblookup-trace-id")
        .and_then(parse_trace_id)
        .unwrap_or_else(|| trace_id_from_index(idx));
    let (clock, virtual_ns) = if virtual_time {
        let ns = Arc::new(AtomicU64::new(0));
        (TraceClock::virtual_shared(Arc::clone(&ns)), Some(ns))
    } else {
        (TraceClock::real(), None)
    };
    let trace = Trace::start(id, clock);
    let root = trace.root(names::SPAN_SERVE_REQUEST);
    root.annotate("request", idx);
    TraceCtx { root, virtual_ns }
}

/// Deterministic bounded jitter for `Retry-After`: seeded off the
/// request index, so a herd of shed clients spreads its retries over
/// `[base/2, 3*base/2]` ms instead of stampeding back in lockstep —
/// and a replayed chaos run reproduces the same spread byte-for-byte.
fn retry_after_ms(state: &ServerState, idx: u64) -> u64 {
    let base = state.config.retry_after_ms.max(2);
    let mut rng = StdRng::seed_from_u64(
        state
            .config
            .retry_jitter_seed
            ^ idx.wrapping_mul(0xA076_1D64_78BD_642F),
    );
    base / 2 + rng.gen_range(0..=base)
}

/// Answers a shed request: publishes its minimal trace (root +
/// `stage.admit`) under the [`Trigger::Shed`] class, then `429` with a
/// jittered `Retry-After` (exact milliseconds in
/// `x-emblookup-retry-after-ms`; the standard header rounds up to
/// whole seconds).
fn shed_response(
    state: &ServerState,
    ctx: &TraceCtx,
    reason: &'static str,
    idx: u64,
    stream: &mut TcpStream,
    keep_alive: bool,
) {
    let admit_span = ctx.root.child(names::SPAN_STAGE_ADMIT);
    admit_span.annotate("shed", 1u64);
    admit_span.annotate("reason", reason);
    admit_span.finish();
    ctx.root.annotate("status", 429u64);
    ctx.root.finish();
    let trace_id = ctx.root.trace().id();
    state.hub.publish(ctx.root.trace().snapshot(), &[Trigger::Shed]);
    let retry_ms = retry_after_ms(state, idx);
    let resp = Response::json(
        429,
        format!("{{\"error\":\"shed\",\"reason\":\"{}\"}}", json::escape(reason)),
    )
    .with_header("retry-after", &retry_ms.div_ceil(1000).max(1).to_string())
    .with_header("x-emblookup-retry-after-ms", &retry_ms.to_string())
    .with_header("x-emblookup-trace-id", &format_trace_id(trace_id));
    write_response(stream, &resp, keep_alive);
}

/// The trigger classes a completed request hit, derived from its
/// outcome: the tail-sampling decision.
fn triggers_for(state: &ServerState, data: &TraceData, panicked: bool, status: u16) -> Vec<Trigger> {
    let mut triggers = Vec::new();
    if data.duration_ns() >= state.slow_threshold_ns() {
        triggers.push(Trigger::Slow);
    }
    if let Some(AnnoValue::Str(rung)) = data.root_annotation("rung") {
        if rung != Rung::Full.name() {
            triggers.push(Trigger::Degraded);
        }
    }
    if matches!(status, 400 | 500 | 504) {
        triggers.push(Trigger::Error);
    }
    if panicked {
        triggers.push(Trigger::Panic);
    }
    triggers
}

/// Admission control: submit the request to the bounded injector; on
/// `QueueFull` (or an injected shed fault), shed with `429`. Admitted
/// requests compute their response on a worker and hand it back
/// through a condvar slot so the connection thread can write it in
/// request order.
fn admit(
    state: &Arc<ServerState>,
    pool: &Arc<Pool>,
    req: Request,
    stream: &mut TcpStream,
    keep_alive: bool,
) {
    let idx = state.seq.fetch_add(1, Ordering::SeqCst);
    let (faults, virtual_time) = faults_for(state, idx);
    let ctx = mint_trace(&req, idx, virtual_time);
    if faults.shed {
        state.metrics.shed.inc();
        shed_response(state, &ctx, "fault injected", idx, stream, keep_alive);
        return;
    }
    // `try_submit` consumes its closure even when it sheds, so the
    // request (and the trace context) ride in a shared slot the
    // connection thread can take back.
    let payload = Arc::new(Mutex::new(Some((req, ctx))));
    let done: Arc<(Mutex<Option<Response>>, Condvar)> =
        Arc::new((Mutex::new(None), Condvar::new()));
    let task_payload = Arc::clone(&payload);
    let task_done = Arc::clone(&done);
    let task_state = Arc::clone(state);
    let outcome = pool.try_submit(move || {
        let taken = lock(&task_payload).take();
        let Some((req, ctx)) = taken else {
            return;
        };
        // Counted here, not on the connection thread after `try_submit`
        // returns: the client must never observe a response whose
        // admission is not yet reflected in the counters.
        task_state.metrics.admitted.inc();
        let start = Instant::now();
        let trace_id = ctx.root.trace().id();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dispatch_post(&task_state, &req, idx, faults, &ctx)
        }));
        let panicked = caught.is_err();
        let resp = caught.unwrap_or_else(|_| {
            task_state.metrics.panics.inc();
            task_state.metrics.errors.inc();
            Response::json(500, "{\"error\":\"internal panic (contained)\"}".to_string())
        });
        ctx.root.annotate("status", u64::from(resp.status));
        ctx.root.finish();
        let data = ctx.root.trace().snapshot();
        let triggers = triggers_for(&task_state, &data, panicked, resp.status);
        // Published before the response is handed back: a client that
        // saw the answer can always fetch its trace.
        task_state.hub.publish(data, &triggers);
        task_state
            .metrics
            .latency
            .record_duration_with_exemplar(start.elapsed(), trace_id);
        let resp = resp.with_header("x-emblookup-trace-id", &format_trace_id(trace_id));
        *lock(&task_done.0) = Some(resp);
        task_done.1.notify_all();
    });
    state.metrics.queue_depth.set(pool.detached_depth() as f64);
    match outcome {
        Ok(()) => {
            // Safe to block: this connection thread holds an `Arc<Pool>`
            // keeping the workers alive, and the worker signals after
            // storing the response.
            let mut guard = lock(&done.0);
            let resp = loop {
                if let Some(r) = guard.take() {
                    break r;
                }
                guard = done
                    .1
                    .wait(guard)
                    .unwrap_or_else(PoisonError::into_inner);
            };
            drop(guard);
            write_response(stream, &resp, keep_alive);
        }
        Err(_full) => {
            state.metrics.shed.inc();
            let reclaimed = lock(&payload).take();
            if let Some((_req, ctx)) = reclaimed {
                shed_response(state, &ctx, "queue full", idx, stream, keep_alive);
            }
        }
    }
}

fn dispatch_post(
    state: &ServerState,
    req: &Request,
    idx: u64,
    faults: StageFaults,
    ctx: &TraceCtx,
) -> Response {
    match req.path.as_str() {
        "/lookup" => {
            let (resp, pinned) = handle_lookup(state, req, idx, faults, ctx);
            // Pinned answers skip the full pipeline, so they carry no
            // signal about whether the overload cleared; only full
            // attempts (200 = recovered, 504 = still drowning) feed the
            // pin's state machine.
            if state.config.overload_threshold > 0 && !pinned && matches!(resp.status, 200 | 504) {
                lock(&state.overload).record(idx, resp.status == 504);
            }
            resp
        }
        _ => handle_bulk(state, req, idx, faults, ctx),
    }
}

/// The request's deadline clock; under virtual time it accrues into the
/// trace's shared nanosecond counter so injected latency is visible in
/// span durations.
fn request_clock(state: &ServerState, req: &Request, ctx: &TraceCtx) -> DeadlineClock {
    match &ctx.virtual_ns {
        Some(ns) => DeadlineClock::with_virtual_ns(budget_ms(state, req), true, Arc::clone(ns)),
        None => DeadlineClock::new(budget_ms(state, req), false),
    }
}

/// Pulls the request's deadline budget: header override (clamped) or
/// the config default.
fn budget_ms(state: &ServerState, req: &Request) -> u64 {
    req.header("x-emblookup-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(|ms| ms.clamp(1, state.config.max_deadline_ms))
        .unwrap_or(state.config.default_deadline_ms)
}

/// One retained trace as `{"triggers":[…],"trace":{…}}`.
fn retained_trace_json(r: &RetainedTrace) -> String {
    let mut out = String::from("{\"triggers\":[");
    for (i, t) in r.triggers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(t.name());
        out.push('"');
    }
    out.push_str("],\"trace\":");
    out.push_str(&r.trace.to_json());
    out.push('}');
    out
}

/// `GET /debug/traces`: retained (tail-sampled) traces with their
/// triggers, plus the sorted ids currently in the flight-recorder ring.
fn debug_traces_json(state: &ServerState) -> String {
    let retained = state.hub.sampler.retained();
    let mut out = String::from("{\"retained\":[");
    for (i, r) in retained.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&retained_trace_json(r));
    }
    out.push_str("],\"recent\":[");
    let mut ids: Vec<u64> = state.hub.recorder.recent().iter().map(|t| t.id).collect();
    ids.sort_unstable();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&format_trace_id(*id));
        out.push('"');
    }
    out.push_str("]}");
    out
}

fn faults_for(state: &ServerState, idx: u64) -> (StageFaults, bool) {
    match &state.faults {
        Some(layer) => (layer.for_request(idx), layer.virtual_time()),
        None => (StageFaults::default(), false),
    }
}

fn bad_request(state: &ServerState, why: &str) -> Response {
    state.metrics.errors.inc();
    Response::json(400, format!("{{\"error\":\"{}\"}}", json::escape(why)))
}

fn deadline_response(state: &ServerState, stage: Stage, clock: &DeadlineClock) -> Response {
    state.metrics.deadline_exceeded.inc();
    // Deterministic body: stage and budget only, no measured times.
    Response::json(
        504,
        format!(
            "{{\"error\":\"deadline\",\"stage\":\"{}\",\"budget_ms\":{}}}",
            stage.name(),
            clock.budget_ms()
        ),
    )
}

/// Renders candidates as a JSON array; scores are `-distance` for the
/// embedding rungs and Jaccard similarity for the q-gram rung.
fn results_json(state: &ServerState, results: &[(EntityId, f32)]) -> String {
    let mut out = String::with_capacity(results.len() * 48 + 2);
    out.push('[');
    for (i, (id, score)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let label = state
            .labels
            .get(id.0 as usize)
            .map(String::as_str)
            .unwrap_or("");
        out.push_str(&format!(
            "{{\"id\":{},\"label\":\"{}\",\"score\":{}}}",
            id.0,
            json::escape(label),
            score
        ));
    }
    out.push(']');
    out
}

fn ok_response(state: &ServerState, rung: Rung, results: &[(EntityId, f32)], ctx: &TraceCtx) -> Response {
    match rung {
        Rung::Full => {}
        Rung::Flat => state.metrics.degraded_flat.inc(),
        Rung::Qgram => state.metrics.degraded_qgram.inc(),
    }
    ctx.root.annotate("rung", rung.name());
    Response::json(
        200,
        format!(
            "{{\"rung\":\"{}\",\"degraded\":{},\"results\":{}}}",
            rung.name(),
            rung != Rung::Full,
            results_json(state, results)
        ),
    )
}

/// The replay-relevant identity of one admitted request, passed into
/// the scatter so shard tasks can key fault injection off it.
#[derive(Clone, Copy)]
struct ShardReq {
    idx: u64,
    faults: StageFaults,
}

/// Scatter-gathers one closure across every breaker-admitted shard on
/// the global pool, each attempt under a private slice of the request's
/// remaining deadline budget. Returns the delivered per-shard results
/// (in shard order), the number of shards that answered, and the total
/// shard count.
///
/// Determinism: shard spans are pre-created sequentially
/// ([`TraceSpan::child_deferred`]) so span ids are width-independent;
/// shard tasks advance only their private clocks; gather and breaker
/// bookkeeping run in shard order. A serialized request stream
/// therefore produces byte-identical responses and traces at any pool
/// width.
fn scatter_shards<T: Send>(
    state: &ServerState,
    sharded: &ShardServing,
    clock: &DeadlineClock,
    req: ShardReq,
    parent: &TraceSpan,
    search: &(dyn Fn(&EntityIndex, &TraceSpan) -> T + Sync),
) -> (Vec<T>, usize, usize) {
    let total = sharded.index.num_shards();
    let mut attempted: Vec<usize> = Vec::with_capacity(total);
    {
        let mut breakers = lock(&sharded.breakers);
        for (i, b) in breakers.iter_mut().enumerate() {
            if b.admit(req.idx) {
                if b.state() == BreakerState::HalfOpen {
                    state.metrics.breaker_probes.inc();
                }
                attempted.push(i);
            }
        }
    }
    if attempted.is_empty() {
        return (Vec::new(), 0, total);
    }
    let slice_ms = (clock.deterministic_remaining_ms() / attempted.len() as u64).max(1);
    let is_virtual = clock.is_virtual();
    let spans: Vec<TraceSpan> = attempted
        .iter()
        .map(|&shard_idx| {
            let span = parent.child_deferred(names::SPAN_STAGE_SHARD);
            span.annotate("shard", shard_idx as u64);
            span.annotate("budget_ms", slice_ms);
            span
        })
        .collect();
    let outcomes = Pool::global().scatter(attempted.len(), |i| {
        let shard_idx = attempted[i];
        let span = &spans[i];
        span.begin();
        // A private slice of the budget: a slow shard misses its own
        // deadline without dragging the shared clock (and the other
        // shards) down with it.
        let shard_clock = DeadlineClock::new(slice_ms, is_virtual);
        if let Some((target, ms)) = req.faults.shard_latency {
            if target as usize % total == shard_idx {
                span.annotate("fault_latency_ms", ms);
                shard_clock.advance_ms(ms);
            }
        }
        if let Some(target) = req.faults.shard_panic {
            if target as usize % total == shard_idx {
                span.annotate("fault_panic", 1u64);
                span.finish();
                // lint: allow(L001) fault-injected panic is this line's entire purpose
                panic!("injected fault: panic in shard {shard_idx} (request {})", req.idx);
            }
        }
        if shard_clock.expired() {
            span.annotate("deadline_miss", 1u64);
            span.finish();
            return None;
        }
        let out = search(sharded.index.shard(shard_idx), span);
        if shard_clock.expired() {
            span.annotate("deadline_miss", 1u64);
            span.finish();
            return None;
        }
        span.finish();
        Some(out)
    });
    if is_virtual {
        // The request's own clock pays for the slowest shard attempt,
        // capped at the slice: one stalled shard costs its slice, never
        // the whole budget.
        let injected = req
            .faults
            .shard_latency
            .filter(|(target, _)| attempted.contains(&(*target as usize % total)))
            .map(|(_, ms)| ms)
            .unwrap_or(0);
        clock.advance_ms(injected.min(slice_ms));
    }
    let mut delivered: Vec<T> = Vec::with_capacity(attempted.len());
    let mut breakers = lock(&sharded.breakers);
    for (slot, outcome) in outcomes.into_iter().enumerate() {
        let shard_idx = attempted[slot];
        let ok = match outcome {
            Ok(Some(result)) => {
                delivered.push(result);
                true
            }
            Ok(None) => false,
            Err(_panic) => {
                state.metrics.panics.inc();
                false
            }
        };
        match breakers[shard_idx].record(req.idx, ok) {
            Some(Transition::Opened | Transition::Reopened) => state.metrics.breaker_opened.inc(),
            Some(Transition::Readmitted) => state.metrics.breaker_readmitted.inc(),
            None => {}
        }
    }
    let live = breakers
        .iter()
        .filter(|b| b.state() != BreakerState::Open)
        .count();
    state.metrics.shards_live.set(live as f64);
    let ok_count = delivered.len();
    (delivered, ok_count, total)
}

/// Full-rung sharded search: scatter the query embedding, merge the
/// per-shard top-k deterministically. `None` means no shard answered.
fn sharded_search(
    state: &ServerState,
    sharded: &ShardServing,
    clock: &DeadlineClock,
    req: ShardReq,
    emb: &[f32],
    k: usize,
    parent: &TraceSpan,
) -> (Option<Vec<(EntityId, f32)>>, usize, usize) {
    let (per_shard, ok, total) = scatter_shards(state, sharded, clock, req, parent, &|shard, span| {
        shard.search_traced(emb, k, span)
    });
    if ok == 0 {
        return (None, 0, total);
    }
    (Some(merge_topk(&per_shard, k)), ok, total)
}

/// `POST /lookup` — the degradation ladder lives here. Returns the
/// response plus whether it was answered from the overload pin (pinned
/// answers must not feed back into the pin's own state machine).
fn handle_lookup(
    state: &ServerState,
    req: &Request,
    idx: u64,
    faults: StageFaults,
    ctx: &TraceCtx,
) -> (Response, bool) {
    let clock = request_clock(state, req, ctx);

    // -- admit stage ----------------------------------------------------
    let admit_span = ctx.root.child(names::SPAN_STAGE_ADMIT);
    admit_span.annotate("deadline_remaining_ms", clock.deterministic_remaining_ms());
    if faults.admit_latency_ms > 0 {
        admit_span.annotate("fault_latency_ms", faults.admit_latency_ms);
    }
    clock.advance_ms(faults.admit_latency_ms);
    admit_span.finish();
    if clock.expired() {
        return (deadline_response(state, Stage::Admit, &clock), false);
    }

    // -- decode stage ---------------------------------------------------
    // Early returns leave the span open; the completion snapshot clamps
    // it, which reads as "the request died decoding" — honest.
    let decode_span = ctx.root.child(names::SPAN_STAGE_DECODE);
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return (bad_request(state, "body is not UTF-8"), false),
    };
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(why) => return (bad_request(state, why), false),
    };
    let Some(q) = parsed.get("q").and_then(Json::as_str) else {
        return (bad_request(state, "missing string field 'q'"), false);
    };
    let k = parsed
        .get("k")
        .and_then(Json::as_u64)
        .unwrap_or(10)
        .clamp(1, state.config.max_k as u64) as usize;
    decode_span.finish();

    // -- overload pin ---------------------------------------------------
    // Sustained deadline misses pinned the whole service to the string
    // rung: answer cheap, fast, and honestly tagged. Every
    // `overload_probe_interval`-th request still runs the full pipeline
    // below, and its outcome (recorded in `dispatch_post`) unpins.
    if state.config.overload_threshold > 0 && lock(&state.overload).pin(idx) {
        state.metrics.overload_pinned.inc();
        ctx.root.annotate("overload", "pinned");
        let resp = finish_qgram(state, q, k, &clock, ctx)
            .with_header("x-emblookup-overload", "pinned");
        return (resp, true);
    }

    if clock.frac_remaining() <= QGRAM_FRAC {
        // Not even the encoder fits in what's left: string rung.
        return (finish_qgram(state, q, k, &clock, ctx), false);
    }

    // -- encode stage ---------------------------------------------------
    let encode_span = ctx.root.child(names::SPAN_STAGE_ENCODE);
    encode_span.annotate("deadline_remaining_ms", clock.deterministic_remaining_ms());
    if faults.encode_latency_ms > 0 {
        encode_span.annotate("fault_latency_ms", faults.encode_latency_ms);
    }
    clock.advance_ms(faults.encode_latency_ms);
    let emb = state.service.model().embed(q);
    encode_span.finish();
    if clock.expired() {
        return (deadline_response(state, Stage::Encode, &clock), false);
    }
    let frac = clock.frac_remaining();
    if frac <= QGRAM_FRAC {
        return (finish_qgram(state, q, k, &clock, ctx), false);
    }
    let mut rung = if frac <= FLAT_FRAC { Rung::Flat } else { Rung::Full };

    // -- search stage ---------------------------------------------------
    let search_span = ctx.root.child(names::SPAN_STAGE_SEARCH);
    search_span.annotate("deadline_remaining_ms", clock.deterministic_remaining_ms());
    if faults.search_latency_ms > 0 {
        search_span.annotate("fault_latency_ms", faults.search_latency_ms);
    }
    clock.advance_ms(faults.search_latency_ms);
    if faults.panic_in_search {
        // The containment drill: a deliberately panicking backend. The
        // per-request catch_unwind above turns this into one 500; the
        // annotation survives into the clamped-open span.
        search_span.annotate("fault_panic", 1u64);
        // lint: allow(L001) fault-injected panic is this line's entire purpose
        panic!("injected fault: panic in search stage (request {idx})");
    }
    let mut shard_header: Option<(usize, usize)> = None;
    let mut results: Option<Vec<(EntityId, f32)>> = None;
    if rung == Rung::Full {
        if faults.backend_error {
            search_span.annotate("fault_backend_error", 1u64);
            rung = Rung::Flat;
        } else {
            let hits: Option<Vec<(EntityId, f32)>> = match &state.sharded {
                Some(sharded) => {
                    let (merged, ok, total) = sharded_search(
                        state,
                        sharded,
                        &clock,
                        ShardReq { idx, faults },
                        &emb,
                        k,
                        &search_span,
                    );
                    shard_header = Some((ok, total));
                    if merged.is_none() {
                        search_span.annotate("all_shards_failed", 1u64);
                    } else if ok < total {
                        state.metrics.partial.inc();
                        search_span.annotate("partial", 1u64);
                    }
                    merged
                }
                None => Some(state.service.index().search_traced(&emb, k, &search_span)),
            };
            match hits {
                Some(mut hits) => {
                    if faults.poison {
                        for (_, d) in hits.iter_mut() {
                            *d = f32::NAN;
                        }
                    }
                    if hits.iter().any(|(_, d)| d.is_nan()) {
                        // Poisoned primary answer: reject it, step down.
                        search_span.annotate("fault_poison", 1u64);
                        rung = Rung::Flat;
                    } else {
                        results = Some(hits.into_iter().map(|(id, d)| (id, -d)).collect());
                    }
                }
                // Every shard failed: honest degradation, step down.
                None => rung = Rung::Flat,
            }
        }
    }
    let results = match results {
        Some(r) => r,
        None => state.ladder.flat_search(&emb, k),
    };
    search_span.annotate("rung", rung.name());
    search_span.finish();
    let tag = |resp: Response| match shard_header {
        Some((ok, total)) => resp.with_header("x-emblookup-shards", &format!("{ok}/{total}")),
        None => resp,
    };
    if clock.expired() {
        return (tag(deadline_response(state, Stage::Search, &clock)), false);
    }

    // -- rank stage -----------------------------------------------------
    let rank_span = ctx.root.child(names::SPAN_STAGE_RANK);
    let resp = tag(ok_response(state, rung, &results, ctx));
    rank_span.finish();
    (resp, false)
}

fn finish_qgram(
    state: &ServerState,
    q: &str,
    k: usize,
    clock: &DeadlineClock,
    ctx: &TraceCtx,
) -> Response {
    let search_span = ctx.root.child(names::SPAN_STAGE_SEARCH);
    search_span.annotate("rung", Rung::Qgram.name());
    search_span.annotate("deadline_remaining_ms", clock.deterministic_remaining_ms());
    let results = state.ladder.qgram_search(q, k);
    search_span.finish();
    if clock.expired() {
        return deadline_response(state, Stage::Search, clock);
    }
    let rank_span = ctx.root.child(names::SPAN_STAGE_RANK);
    let resp = ok_response(state, Rung::Qgram, &results, ctx);
    rank_span.finish();
    resp
}

/// `POST /lookup/bulk` — full rung only; a batch that cannot run at
/// full fidelity inside its budget fails fast with `504` so the client
/// can split or retry it, rather than receiving a silently mixed-rung
/// batch.
fn handle_bulk(
    state: &ServerState,
    req: &Request,
    idx: u64,
    faults: StageFaults,
    ctx: &TraceCtx,
) -> Response {
    let clock = request_clock(state, req, ctx);

    // -- admit stage ----------------------------------------------------
    let admit_span = ctx.root.child(names::SPAN_STAGE_ADMIT);
    admit_span.annotate("deadline_remaining_ms", clock.deterministic_remaining_ms());
    if faults.admit_latency_ms > 0 {
        admit_span.annotate("fault_latency_ms", faults.admit_latency_ms);
    }
    clock.advance_ms(faults.admit_latency_ms);
    admit_span.finish();
    if clock.expired() {
        return deadline_response(state, Stage::Admit, &clock);
    }

    // -- decode stage ---------------------------------------------------
    let decode_span = ctx.root.child(names::SPAN_STAGE_DECODE);
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return bad_request(state, "body is not UTF-8"),
    };
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(why) => return bad_request(state, why),
    };
    let Some(queries) = parsed.get("queries").and_then(Json::as_arr) else {
        return bad_request(state, "missing array field 'queries'");
    };
    if queries.len() > state.config.max_bulk {
        return bad_request(state, "too many queries in one batch");
    }
    let mut refs: Vec<&str> = Vec::with_capacity(queries.len());
    for q in queries {
        match q.as_str() {
            Some(s) => refs.push(s),
            None => return bad_request(state, "queries must be strings"),
        }
    }
    let k = parsed
        .get("k")
        .and_then(Json::as_u64)
        .unwrap_or(10)
        .clamp(1, state.config.max_k as u64) as usize;
    decode_span.finish();

    // -- search stage (bulk encodes inside its chunks) -------------------
    let search_span = ctx.root.child(names::SPAN_STAGE_SEARCH);
    search_span.annotate("deadline_remaining_ms", clock.deterministic_remaining_ms());
    if faults.search_latency_ms > 0 {
        search_span.annotate("fault_latency_ms", faults.search_latency_ms);
    }
    clock.advance_ms(faults.search_latency_ms);
    if faults.panic_in_search {
        search_span.annotate("fault_panic", 1u64);
        // lint: allow(L001) fault-injected panic is this line's entire purpose
        panic!("injected fault: panic in bulk search (request {idx})");
    }
    if faults.backend_error {
        search_span.annotate("fault_backend_error", 1u64);
        state.metrics.errors.inc();
        return Response::json(500, "{\"error\":\"backend error\"}".to_string());
    }
    let mut shard_header: Option<(usize, usize)> = None;
    let batches: Vec<Vec<(EntityId, f32)>> = match &state.sharded {
        Some(sharded) => {
            // One embedding pass for the whole batch, shared by every
            // shard attempt.
            let embs = state
                .service
                .model()
                .embed_batch(&refs, emblookup_core::num_threads());
            let (per_shard, ok, total) = scatter_shards(
                state,
                sharded,
                &clock,
                ShardReq { idx, faults },
                &search_span,
                &|shard, span| {
                    span.annotate("queries", embs.len() as u64);
                    embs.iter().map(|e| shard.search(e, k)).collect::<Vec<_>>()
                },
            );
            shard_header = Some((ok, total));
            if ok == 0 {
                state.metrics.errors.inc();
                search_span.annotate("all_shards_failed", 1u64);
                return Response::json(500, "{\"error\":\"all shards failed\"}".to_string())
                    .with_header("x-emblookup-shards", &format!("0/{total}"));
            }
            if ok < total {
                state.metrics.partial.inc();
                search_span.annotate("partial", 1u64);
            }
            (0..refs.len())
                .map(|qi| {
                    let lists: Vec<Vec<(EntityId, f32)>> =
                        per_shard.iter().map(|s| s[qi].clone()).collect();
                    merge_topk(&lists, k)
                })
                .collect()
        }
        None => match state.service.try_bulk_lookup_traced(&refs, k, &search_span) {
            Ok(b) => b,
            Err(_) => {
                state.metrics.errors.inc();
                return Response::json(500, "{\"error\":\"bulk lookup failed\"}".to_string());
            }
        },
    };
    search_span.annotate("rung", Rung::Full.name());
    search_span.finish();
    let tag = |resp: Response| match shard_header {
        Some((ok, total)) => resp.with_header("x-emblookup-shards", &format!("{ok}/{total}")),
        None => resp,
    };
    if clock.expired() {
        return tag(deadline_response(state, Stage::Search, &clock));
    }

    // -- rank stage -----------------------------------------------------
    let rank_span = ctx.root.child(names::SPAN_STAGE_RANK);
    ctx.root.annotate("rung", Rung::Full.name());
    let mut out = String::from("{\"rung\":\"full\",\"degraded\":false,\"results\":[");
    for (i, hits) in batches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let scored: Vec<(EntityId, f32)> =
            hits.iter().map(|(id, d)| (*id, -d)).collect();
        out.push_str(&results_json(state, &scored));
    }
    out.push_str("]}");
    rank_span.finish();
    tag(Response::json(200, out))
}
