//! The hardened HTTP server: admission control, deadlines, the
//! degradation ladder, and per-request panic containment.
//!
//! ## Threading model
//!
//! The accept thread owns the worker [`Pool`] and does all socket
//! reads; tiny control-plane GETs (`/healthz`, `/metrics`) are answered
//! inline so they can never be shed behind data-plane load. `POST`
//! bodies are parsed and then submitted to the pool's **bounded
//! injector** ([`Pool::try_submit`]): when the queue is at capacity the
//! submission fails synchronously and the accept thread answers `429`
//! with `Retry-After` — load is shed at the door, not buffered into an
//! unbounded backlog.
//!
//! Keeping the pool on the accept thread also means the pool is never
//! dropped from one of its own workers (which would self-join), and
//! request indices are assigned in accept order — the anchor for
//! deterministic fault replay.
//!
//! ## Request lifecycle
//!
//! Every admitted request resolves to exactly one of `200`, `400`,
//! `500` (contained panic), or `504` (deadline); rejected requests get
//! `429`. The handler body runs under `catch_unwind`, so a panicking
//! backend costs one response, never the process.
//!
//! ## Tracing
//!
//! A [`Trace`] is minted per request on the accept thread (id from the
//! `x-emblookup-trace-id` header or derived from the request index) and
//! threaded explicitly through the handler: every stage gets a child
//! span, the full-rung search descends into the ANN backend, and bulk
//! requests fan `pool.chunk` spans out of the search stage. Completed
//! trees always land in the flight-recorder ring; slow / shed /
//! degraded / errored / panicked requests are additionally tail-sampled
//! into the retained buffer served by `GET /debug/traces`. Under the
//! virtual-time fault harness the trace clock shares the deadline
//! clock's nanosecond counter, so captured durations are deterministic.

use crate::faults::{DeadlineClock, FaultLayer, Stage, StageFaults};
use crate::http::{read_request, write_response, Request, Response};
use crate::json::{self, Json};
use crate::ladder::{Ladder, Rung};
use crate::ServeConfig;
use emblookup_core::EmbLookup;
use emblookup_kg::{EntityId, KnowledgeGraph};
use emblookup_obs::names;
use emblookup_obs::{
    format_trace_id, parse_trace_id, trace_id_from_index, traces_to_chrome_json, AnnoValue,
    Counter, Gauge, Histogram, MetricsRegistry, RetainedTrace, Trace, TraceClock, TraceData,
    TraceHub, TraceSpan, Trigger,
};
use emblookup_pool::{BoundedQueue, Pool};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Below this fraction of remaining budget the full PQ/ANN rung is
/// skipped in favour of exact flat search.
const FLAT_FRAC: f64 = 0.5;
/// Below this fraction even encoding is skipped; the q-gram string
/// rung answers directly.
const QGRAM_FRAC: f64 = 0.15;
/// Cap on request bodies.
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Eagerly-created handles for every `serve.*` metric, so `/metrics`
/// exports the full family (at zero) from the first scrape.
struct ServeMetrics {
    requests: Arc<Counter>,
    admitted: Arc<Counter>,
    shed: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    latency: Arc<Histogram>,
    errors: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    degraded_flat: Arc<Counter>,
    degraded_qgram: Arc<Counter>,
    panics: Arc<Counter>,
}

impl ServeMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        ServeMetrics {
            requests: registry.counter(names::SERVE_REQUESTS),
            admitted: registry.counter(names::SERVE_ADMITTED),
            shed: registry.counter(names::SERVE_SHED),
            queue_depth: registry.gauge(names::SERVE_QUEUE_DEPTH),
            latency: registry.histogram(names::SERVE_LATENCY),
            errors: registry.counter(names::SERVE_ERRORS),
            deadline_exceeded: registry.counter(names::SERVE_DEADLINE_EXCEEDED),
            degraded_flat: registry.counter(names::SERVE_DEGRADED_FLAT),
            degraded_qgram: registry.counter(names::SERVE_DEGRADED_QGRAM),
            panics: registry.counter(names::SERVE_PANICS),
        }
    }
}

/// Everything the request handlers need, shared between the accept
/// thread and the pool workers.
struct ServerState {
    service: EmbLookup,
    ladder: Ladder,
    /// Entity labels indexed by dense entity id, for response bodies.
    labels: Vec<String>,
    faults: Option<FaultLayer>,
    config: ServeConfig,
    registry: Arc<MetricsRegistry>,
    metrics: ServeMetrics,
    /// Flight recorder + tail sampler every completed trace publishes to.
    hub: TraceHub,
    /// Request indices in accept order; the fault layer's replay key.
    // lint: atomic(counter) accept-order index allocator
    seq: AtomicU64,
}

impl ServerState {
    /// Slow-trace threshold in clock nanoseconds: the configured value,
    /// or — when `slow_trace_ms` is 0 — twice the observed latency p99
    /// once 64 requests have completed (nothing is "slow" before that).
    fn slow_threshold_ns(&self) -> u64 {
        let ms = self.config.slow_trace_ms;
        if ms > 0 {
            return ms.saturating_mul(1_000_000);
        }
        if self.metrics.latency.count() >= 64 {
            self.metrics.latency.snapshot().p99().saturating_mul(2)
        } else {
            u64::MAX
        }
    }
}

/// The per-request trace context, minted on the accept thread so span
/// ids follow accept order, then moved into the handler task.
struct TraceCtx {
    /// The `serve.request` root span; stage spans hang off it.
    root: TraceSpan,
    /// The shared virtual nanosecond counter when the fault harness
    /// runs in virtual time; the deadline clock accrues into it so
    /// injected latency shows up in span durations.
    // lint: atomic(counter) virtual clock handle; see DeadlineClock
    virtual_ns: Option<Arc<AtomicU64>>,
}

/// A running server. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop and joins the worker pool.
pub struct Server {
    addr: SocketAddr,
    // lint: atomic(flag) one-way stop publication to the accept loop
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    registry: Arc<MetricsRegistry>,
}

impl Server {
    /// Binds `config.addr`, builds the degradation ladder, and starts
    /// the accept loop. Metrics go to the process-global registry.
    ///
    /// # Errors
    /// Propagates socket bind/configuration failures.
    pub fn start(service: EmbLookup, kg: &KnowledgeGraph, config: ServeConfig) -> io::Result<Server> {
        let registry = Arc::new(MetricsRegistry::new());
        Self::start_with_registry(service, kg, config, registry)
    }

    /// Like [`Server::start`] but exporting into a caller-supplied
    /// registry — tests use a private registry per server instance to
    /// assert exact counter values without cross-test interference.
    ///
    /// # Errors
    /// Propagates socket bind/configuration failures.
    pub fn start_with_registry(
        service: EmbLookup,
        kg: &KnowledgeGraph,
        config: ServeConfig,
        registry: Arc<MetricsRegistry>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let ladder = Ladder::build(&service, kg, config.fallback_cap);
        let labels: Vec<String> = (0..kg.num_entities())
            .map(|i| kg.label(EntityId(i as u32)).to_string())
            .collect();
        let metrics = ServeMetrics::new(&registry);
        metrics.queue_depth.set(0.0);
        let faults = config.faults.clone().map(FaultLayer::new);
        let workers = if config.workers == 0 {
            emblookup_pool::default_threads()
        } else {
            config.workers
        };
        let queue_cap = config.queue_cap;
        let hub = TraceHub::new(config.trace_ring_cap, config.trace_retain_per_trigger, &registry);
        let state = Arc::new(ServerState {
            service,
            ladder,
            labels,
            faults,
            config,
            registry: Arc::clone(&registry),
            metrics,
            hub,
            seq: AtomicU64::new(0),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("emblookup-serve-accept".to_string())
            .spawn(move || {
                // The accept thread owns the pool: it is dropped (and
                // its workers joined) here, never from a worker.
                let pool = Pool::with_threads_bounded(workers, BoundedQueue { cap: queue_cap });
                accept_loop(&listener, &state, &pool, &shutdown_flag);
            })?;
        Ok(Server {
            addr,
            shutdown,
            handle: Some(handle),
            registry,
        })
    }

    /// The bound address (useful with `addr = "127.0.0.1:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry this server exports from `/metrics`.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Stops accepting, joins the accept thread (which joins the pool).
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    pool: &Pool,
    shutdown: &AtomicBool,
) {
    loop {
        let Ok((mut stream, _)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_read_timeout(Some(Duration::from_millis(
            state.config.read_timeout_ms.max(1),
        )));
        let req = match read_request(&mut stream, MAX_BODY_BYTES) {
            Ok(req) => req,
            Err(why) => {
                state.metrics.errors.inc();
                let body = format!("{{\"error\":\"{}\"}}", json::escape(why));
                write_response(&mut stream, &Response::json(400, body));
                continue;
            }
        };
        state.metrics.requests.inc();
        match (req.method.as_str(), req.path.as_str()) {
            // Control plane: answered inline, never queued, never shed.
            ("GET", "/healthz") => {
                write_response(
                    &mut stream,
                    &Response::json(200, "{\"status\":\"ok\"}".to_string()),
                );
            }
            ("GET", "/metrics") => {
                state
                    .metrics
                    .queue_depth
                    .set(pool.detached_depth() as f64);
                let body = state.registry.snapshot().to_prometheus();
                write_response(&mut stream, &Response::text(200, body));
            }
            ("GET", "/debug/traces") => {
                write_response(&mut stream, &Response::json(200, debug_traces_json(state)));
            }
            ("GET", "/debug/traces/chrome") => {
                let traces: Vec<TraceData> = state
                    .hub
                    .sampler
                    .retained()
                    .iter()
                    .map(|r| (*r.trace).clone())
                    .collect();
                write_response(
                    &mut stream,
                    &Response::json(200, traces_to_chrome_json(&traces)),
                );
            }
            ("GET", path) if path.starts_with("/debug/traces/") => {
                let found = path
                    .strip_prefix("/debug/traces/")
                    .and_then(parse_trace_id)
                    .and_then(|id| state.hub.find(id));
                let resp = match found {
                    Some(r) => Response::json(200, retained_trace_json(&r)),
                    None => Response::json(404, "{\"error\":\"trace not found\"}".to_string()),
                };
                write_response(&mut stream, &resp);
            }
            ("POST", "/lookup") | ("POST", "/lookup/bulk") => {
                admit(state, pool, req, stream);
            }
            ("GET", _) | ("POST", _) => {
                write_response(
                    &mut stream,
                    &Response::json(404, "{\"error\":\"not found\"}".to_string()),
                );
            }
            _ => {
                write_response(
                    &mut stream,
                    &Response::json(405, "{\"error\":\"method not allowed\"}".to_string()),
                );
            }
        }
    }
}

/// Mints the request's trace on the accept thread: id from the client
/// header (else derived from the accept index), clock virtual when the
/// fault harness runs in virtual time.
fn mint_trace(req: &Request, idx: u64, virtual_time: bool) -> TraceCtx {
    let id = req
        .header("x-emblookup-trace-id")
        .and_then(parse_trace_id)
        .unwrap_or_else(|| trace_id_from_index(idx));
    let (clock, virtual_ns) = if virtual_time {
        let ns = Arc::new(AtomicU64::new(0));
        (TraceClock::virtual_shared(Arc::clone(&ns)), Some(ns))
    } else {
        (TraceClock::real(), None)
    };
    let trace = Trace::start(id, clock);
    let root = trace.root(names::SPAN_SERVE_REQUEST);
    root.annotate("request", idx);
    TraceCtx { root, virtual_ns }
}

/// Answers a shed request: publishes its minimal trace (root +
/// `stage.admit`) under the [`Trigger::Shed`] class, then `429`.
fn shed_response(state: &ServerState, ctx: &TraceCtx, reason: &'static str, mut stream: TcpStream) {
    let admit_span = ctx.root.child(names::SPAN_STAGE_ADMIT);
    admit_span.annotate("shed", 1u64);
    admit_span.annotate("reason", reason);
    admit_span.finish();
    ctx.root.annotate("status", 429u64);
    ctx.root.finish();
    let trace_id = ctx.root.trace().id();
    state.hub.publish(ctx.root.trace().snapshot(), &[Trigger::Shed]);
    let resp = Response::json(
        429,
        format!("{{\"error\":\"shed\",\"reason\":\"{}\"}}", json::escape(reason)),
    )
    .with_header("retry-after", "1")
    .with_header("x-emblookup-trace-id", &format_trace_id(trace_id));
    write_response(&mut stream, &resp);
}

/// The trigger classes a completed request hit, derived from its
/// outcome: the tail-sampling decision.
fn triggers_for(state: &ServerState, data: &TraceData, panicked: bool, status: u16) -> Vec<Trigger> {
    let mut triggers = Vec::new();
    if data.duration_ns() >= state.slow_threshold_ns() {
        triggers.push(Trigger::Slow);
    }
    if let Some(AnnoValue::Str(rung)) = data.root_annotation("rung") {
        if rung != Rung::Full.name() {
            triggers.push(Trigger::Degraded);
        }
    }
    if matches!(status, 400 | 500 | 504) {
        triggers.push(Trigger::Error);
    }
    if panicked {
        triggers.push(Trigger::Panic);
    }
    triggers
}

/// Admission control: submit the request to the bounded injector; on
/// `QueueFull` (or an injected shed fault), reclaim the stream and shed
/// with `429`.
fn admit(state: &Arc<ServerState>, pool: &Pool, req: Request, stream: TcpStream) {
    let idx = state.seq.fetch_add(1, Ordering::SeqCst);
    let (faults, virtual_time) = faults_for(state, idx);
    let ctx = mint_trace(&req, idx, virtual_time);
    if faults.shed {
        state.metrics.shed.inc();
        shed_response(state, &ctx, "fault injected", stream);
        return;
    }
    // `try_submit` consumes its closure even when it sheds, so the
    // stream (and the trace context) ride in a shared slot the accept
    // thread can take back.
    let slot = Arc::new(Mutex::new(Some((stream, ctx))));
    let task_slot = Arc::clone(&slot);
    let task_state = Arc::clone(state);
    let outcome = pool.try_submit(move || {
        let taken = task_slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        let Some((mut stream, ctx)) = taken else {
            return;
        };
        // Counted here, not on the accept thread after `try_submit`
        // returns: the client must never observe a response whose
        // admission is not yet reflected in the counters.
        task_state.metrics.admitted.inc();
        let start = Instant::now();
        let trace_id = ctx.root.trace().id();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dispatch_post(&task_state, &req, idx, faults, &ctx)
        }));
        let panicked = caught.is_err();
        let resp = caught.unwrap_or_else(|_| {
            task_state.metrics.panics.inc();
            task_state.metrics.errors.inc();
            Response::json(500, "{\"error\":\"internal panic (contained)\"}".to_string())
        });
        ctx.root.annotate("status", u64::from(resp.status));
        ctx.root.finish();
        let data = ctx.root.trace().snapshot();
        let triggers = triggers_for(&task_state, &data, panicked, resp.status);
        // Published before the response bytes leave: a client that saw
        // the answer can always fetch its trace.
        task_state.hub.publish(data, &triggers);
        task_state
            .metrics
            .latency
            .record_duration_with_exemplar(start.elapsed(), trace_id);
        let resp = resp.with_header("x-emblookup-trace-id", &format_trace_id(trace_id));
        write_response(&mut stream, &resp);
    });
    state.metrics.queue_depth.set(pool.detached_depth() as f64);
    match outcome {
        Ok(()) => {}
        Err(_full) => {
            state.metrics.shed.inc();
            let reclaimed = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
            if let Some((stream, ctx)) = reclaimed {
                shed_response(state, &ctx, "queue full", stream);
            }
        }
    }
}

fn dispatch_post(
    state: &ServerState,
    req: &Request,
    idx: u64,
    faults: StageFaults,
    ctx: &TraceCtx,
) -> Response {
    match req.path.as_str() {
        "/lookup" => handle_lookup(state, req, idx, faults, ctx),
        _ => handle_bulk(state, req, idx, faults, ctx),
    }
}

/// The request's deadline clock; under virtual time it accrues into the
/// trace's shared nanosecond counter so injected latency is visible in
/// span durations.
fn request_clock(state: &ServerState, req: &Request, ctx: &TraceCtx) -> DeadlineClock {
    match &ctx.virtual_ns {
        Some(ns) => DeadlineClock::with_virtual_ns(budget_ms(state, req), true, Arc::clone(ns)),
        None => DeadlineClock::new(budget_ms(state, req), false),
    }
}

/// Pulls the request's deadline budget: header override (clamped) or
/// the config default.
fn budget_ms(state: &ServerState, req: &Request) -> u64 {
    req.header("x-emblookup-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .map(|ms| ms.clamp(1, state.config.max_deadline_ms))
        .unwrap_or(state.config.default_deadline_ms)
}

/// One retained trace as `{"triggers":[…],"trace":{…}}`.
fn retained_trace_json(r: &RetainedTrace) -> String {
    let mut out = String::from("{\"triggers\":[");
    for (i, t) in r.triggers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(t.name());
        out.push('"');
    }
    out.push_str("],\"trace\":");
    out.push_str(&r.trace.to_json());
    out.push('}');
    out
}

/// `GET /debug/traces`: retained (tail-sampled) traces with their
/// triggers, plus the sorted ids currently in the flight-recorder ring.
fn debug_traces_json(state: &ServerState) -> String {
    let retained = state.hub.sampler.retained();
    let mut out = String::from("{\"retained\":[");
    for (i, r) in retained.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&retained_trace_json(r));
    }
    out.push_str("],\"recent\":[");
    let mut ids: Vec<u64> = state.hub.recorder.recent().iter().map(|t| t.id).collect();
    ids.sort_unstable();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&format_trace_id(*id));
        out.push('"');
    }
    out.push_str("]}");
    out
}

fn faults_for(state: &ServerState, idx: u64) -> (StageFaults, bool) {
    match &state.faults {
        Some(layer) => (layer.for_request(idx), layer.virtual_time()),
        None => (StageFaults::default(), false),
    }
}

fn bad_request(state: &ServerState, why: &str) -> Response {
    state.metrics.errors.inc();
    Response::json(400, format!("{{\"error\":\"{}\"}}", json::escape(why)))
}

fn deadline_response(state: &ServerState, stage: Stage, clock: &DeadlineClock) -> Response {
    state.metrics.deadline_exceeded.inc();
    // Deterministic body: stage and budget only, no measured times.
    Response::json(
        504,
        format!(
            "{{\"error\":\"deadline\",\"stage\":\"{}\",\"budget_ms\":{}}}",
            stage.name(),
            clock.budget_ms()
        ),
    )
}

/// Renders candidates as a JSON array; scores are `-distance` for the
/// embedding rungs and Jaccard similarity for the q-gram rung.
fn results_json(state: &ServerState, results: &[(EntityId, f32)]) -> String {
    let mut out = String::with_capacity(results.len() * 48 + 2);
    out.push('[');
    for (i, (id, score)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let label = state
            .labels
            .get(id.0 as usize)
            .map(String::as_str)
            .unwrap_or("");
        out.push_str(&format!(
            "{{\"id\":{},\"label\":\"{}\",\"score\":{}}}",
            id.0,
            json::escape(label),
            score
        ));
    }
    out.push(']');
    out
}

fn ok_response(state: &ServerState, rung: Rung, results: &[(EntityId, f32)], ctx: &TraceCtx) -> Response {
    match rung {
        Rung::Full => {}
        Rung::Flat => state.metrics.degraded_flat.inc(),
        Rung::Qgram => state.metrics.degraded_qgram.inc(),
    }
    ctx.root.annotate("rung", rung.name());
    Response::json(
        200,
        format!(
            "{{\"rung\":\"{}\",\"degraded\":{},\"results\":{}}}",
            rung.name(),
            rung != Rung::Full,
            results_json(state, results)
        ),
    )
}

/// `POST /lookup` — the degradation ladder lives here.
fn handle_lookup(
    state: &ServerState,
    req: &Request,
    idx: u64,
    faults: StageFaults,
    ctx: &TraceCtx,
) -> Response {
    let clock = request_clock(state, req, ctx);

    // -- admit stage ----------------------------------------------------
    let admit_span = ctx.root.child(names::SPAN_STAGE_ADMIT);
    admit_span.annotate("deadline_remaining_ms", clock.deterministic_remaining_ms());
    if faults.admit_latency_ms > 0 {
        admit_span.annotate("fault_latency_ms", faults.admit_latency_ms);
    }
    clock.advance_ms(faults.admit_latency_ms);
    admit_span.finish();
    if clock.expired() {
        return deadline_response(state, Stage::Admit, &clock);
    }

    // -- decode stage ---------------------------------------------------
    // Early returns leave the span open; the completion snapshot clamps
    // it, which reads as "the request died decoding" — honest.
    let decode_span = ctx.root.child(names::SPAN_STAGE_DECODE);
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return bad_request(state, "body is not UTF-8"),
    };
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(why) => return bad_request(state, why),
    };
    let Some(q) = parsed.get("q").and_then(Json::as_str) else {
        return bad_request(state, "missing string field 'q'");
    };
    let k = parsed
        .get("k")
        .and_then(Json::as_u64)
        .unwrap_or(10)
        .clamp(1, state.config.max_k as u64) as usize;
    decode_span.finish();
    if clock.frac_remaining() <= QGRAM_FRAC {
        // Not even the encoder fits in what's left: string rung.
        return finish_qgram(state, q, k, &clock, ctx);
    }

    // -- encode stage ---------------------------------------------------
    let encode_span = ctx.root.child(names::SPAN_STAGE_ENCODE);
    encode_span.annotate("deadline_remaining_ms", clock.deterministic_remaining_ms());
    if faults.encode_latency_ms > 0 {
        encode_span.annotate("fault_latency_ms", faults.encode_latency_ms);
    }
    clock.advance_ms(faults.encode_latency_ms);
    let emb = state.service.model().embed(q);
    encode_span.finish();
    if clock.expired() {
        return deadline_response(state, Stage::Encode, &clock);
    }
    let frac = clock.frac_remaining();
    if frac <= QGRAM_FRAC {
        return finish_qgram(state, q, k, &clock, ctx);
    }
    let mut rung = if frac <= FLAT_FRAC { Rung::Flat } else { Rung::Full };

    // -- search stage ---------------------------------------------------
    let search_span = ctx.root.child(names::SPAN_STAGE_SEARCH);
    search_span.annotate("deadline_remaining_ms", clock.deterministic_remaining_ms());
    if faults.search_latency_ms > 0 {
        search_span.annotate("fault_latency_ms", faults.search_latency_ms);
    }
    clock.advance_ms(faults.search_latency_ms);
    if faults.panic_in_search {
        // The containment drill: a deliberately panicking backend. The
        // per-request catch_unwind above turns this into one 500; the
        // annotation survives into the clamped-open span.
        search_span.annotate("fault_panic", 1u64);
        // lint: allow(L001) fault-injected panic is this line's entire purpose
        panic!("injected fault: panic in search stage (request {idx})");
    }
    let mut results: Option<Vec<(EntityId, f32)>> = None;
    if rung == Rung::Full {
        if faults.backend_error {
            search_span.annotate("fault_backend_error", 1u64);
            rung = Rung::Flat;
        } else {
            let mut hits: Vec<(EntityId, f32)> =
                state.service.index().search_traced(&emb, k, &search_span);
            if faults.poison {
                for (_, d) in hits.iter_mut() {
                    *d = f32::NAN;
                }
            }
            if hits.iter().any(|(_, d)| d.is_nan()) {
                // Poisoned primary answer: reject it, step down.
                search_span.annotate("fault_poison", 1u64);
                rung = Rung::Flat;
            } else {
                results = Some(hits.into_iter().map(|(id, d)| (id, -d)).collect());
            }
        }
    }
    let results = match results {
        Some(r) => r,
        None => state.ladder.flat_search(&emb, k),
    };
    search_span.annotate("rung", rung.name());
    search_span.finish();
    if clock.expired() {
        return deadline_response(state, Stage::Search, &clock);
    }

    // -- rank stage -----------------------------------------------------
    let rank_span = ctx.root.child(names::SPAN_STAGE_RANK);
    let resp = ok_response(state, rung, &results, ctx);
    rank_span.finish();
    resp
}

fn finish_qgram(
    state: &ServerState,
    q: &str,
    k: usize,
    clock: &DeadlineClock,
    ctx: &TraceCtx,
) -> Response {
    let search_span = ctx.root.child(names::SPAN_STAGE_SEARCH);
    search_span.annotate("rung", Rung::Qgram.name());
    search_span.annotate("deadline_remaining_ms", clock.deterministic_remaining_ms());
    let results = state.ladder.qgram_search(q, k);
    search_span.finish();
    if clock.expired() {
        return deadline_response(state, Stage::Search, clock);
    }
    let rank_span = ctx.root.child(names::SPAN_STAGE_RANK);
    let resp = ok_response(state, Rung::Qgram, &results, ctx);
    rank_span.finish();
    resp
}

/// `POST /lookup/bulk` — full rung only; a batch that cannot run at
/// full fidelity inside its budget fails fast with `504` so the client
/// can split or retry it, rather than receiving a silently mixed-rung
/// batch.
fn handle_bulk(
    state: &ServerState,
    req: &Request,
    idx: u64,
    faults: StageFaults,
    ctx: &TraceCtx,
) -> Response {
    let clock = request_clock(state, req, ctx);

    // -- admit stage ----------------------------------------------------
    let admit_span = ctx.root.child(names::SPAN_STAGE_ADMIT);
    admit_span.annotate("deadline_remaining_ms", clock.deterministic_remaining_ms());
    if faults.admit_latency_ms > 0 {
        admit_span.annotate("fault_latency_ms", faults.admit_latency_ms);
    }
    clock.advance_ms(faults.admit_latency_ms);
    admit_span.finish();
    if clock.expired() {
        return deadline_response(state, Stage::Admit, &clock);
    }

    // -- decode stage ---------------------------------------------------
    let decode_span = ctx.root.child(names::SPAN_STAGE_DECODE);
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return bad_request(state, "body is not UTF-8"),
    };
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(why) => return bad_request(state, why),
    };
    let Some(queries) = parsed.get("queries").and_then(Json::as_arr) else {
        return bad_request(state, "missing array field 'queries'");
    };
    if queries.len() > state.config.max_bulk {
        return bad_request(state, "too many queries in one batch");
    }
    let mut refs: Vec<&str> = Vec::with_capacity(queries.len());
    for q in queries {
        match q.as_str() {
            Some(s) => refs.push(s),
            None => return bad_request(state, "queries must be strings"),
        }
    }
    let k = parsed
        .get("k")
        .and_then(Json::as_u64)
        .unwrap_or(10)
        .clamp(1, state.config.max_k as u64) as usize;
    decode_span.finish();

    // -- search stage (bulk encodes inside its chunks) -------------------
    let search_span = ctx.root.child(names::SPAN_STAGE_SEARCH);
    search_span.annotate("deadline_remaining_ms", clock.deterministic_remaining_ms());
    if faults.search_latency_ms > 0 {
        search_span.annotate("fault_latency_ms", faults.search_latency_ms);
    }
    clock.advance_ms(faults.search_latency_ms);
    if faults.panic_in_search {
        search_span.annotate("fault_panic", 1u64);
        // lint: allow(L001) fault-injected panic is this line's entire purpose
        panic!("injected fault: panic in bulk search (request {idx})");
    }
    if faults.backend_error {
        search_span.annotate("fault_backend_error", 1u64);
        state.metrics.errors.inc();
        return Response::json(500, "{\"error\":\"backend error\"}".to_string());
    }
    let batches = match state.service.try_bulk_lookup_traced(&refs, k, &search_span) {
        Ok(b) => b,
        Err(_) => {
            state.metrics.errors.inc();
            return Response::json(500, "{\"error\":\"bulk lookup failed\"}".to_string());
        }
    };
    search_span.annotate("rung", Rung::Full.name());
    search_span.finish();
    if clock.expired() {
        return deadline_response(state, Stage::Search, &clock);
    }

    // -- rank stage -----------------------------------------------------
    let rank_span = ctx.root.child(names::SPAN_STAGE_RANK);
    ctx.root.annotate("rung", Rung::Full.name());
    let mut out = String::from("{\"rung\":\"full\",\"degraded\":false,\"results\":[");
    for (i, hits) in batches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let scored: Vec<(EntityId, f32)> =
            hits.iter().map(|(id, d)| (*id, -d)).collect();
        out.push_str(&results_json(state, &scored));
    }
    out.push_str("]}");
    rank_span.finish();
    Response::json(200, out)
}
