//! A tiny blocking HTTP/1.1 client on `std::net::TcpStream`.
//!
//! Exists so the integration tests, the load generator, and the
//! `emblookup-cli query` subcommand can exercise the server without
//! pulling in an external HTTP dependency. [`Connection`] holds one
//! keep-alive socket and frames responses by `content-length`, so a
//! bulk loop pays TCP setup once; the one-shot [`request`] helper keeps
//! the old `Connection: close` behavior for single exchanges.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status, lower-cased headers, body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs with names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body as text.
    pub body: String,
}

impl HttpResponse {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the response to EOF.
///
/// # Errors
/// Propagates connect/read/write failures and malformed response
/// framing as `io::Error`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut out = String::with_capacity(body.len() + 128);
    out.push_str(method);
    out.push(' ');
    out.push_str(path);
    out.push_str(" HTTP/1.1\r\nhost: emblookup\r\ncontent-length: ");
    out.push_str(&body.len().to_string());
    for (name, value) in headers {
        out.push_str("\r\n");
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
    }
    out.push_str("\r\nconnection: close\r\n\r\n");
    out.push_str(body);
    stream.write_all(out.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// `GET path`.
///
/// # Errors
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<HttpResponse> {
    request(addr, "GET", path, &[], "")
}

/// `POST path` with a JSON body.
///
/// # Errors
/// See [`request`].
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
) -> std::io::Result<HttpResponse> {
    let mut all = vec![("content-type", "application/json")];
    all.extend_from_slice(headers);
    request(addr, "POST", path, &all, body)
}

/// One keep-alive connection to a server; requests reuse the socket.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
}

impl Connection {
    /// Connects with a 30 s read timeout.
    ///
    /// # Errors
    /// Propagates connect/configure failures.
    pub fn open(addr: SocketAddr) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Connection { stream })
    }

    /// Sends one request on the kept-alive socket and reads one
    /// `content-length`-framed response.
    ///
    /// # Errors
    /// Propagates read/write failures and malformed framing as
    /// `io::Error`; the connection should be dropped after an error.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> std::io::Result<HttpResponse> {
        let mut out = String::with_capacity(body.len() + 128);
        out.push_str(method);
        out.push(' ');
        out.push_str(path);
        out.push_str(" HTTP/1.1\r\nhost: emblookup\r\ncontent-length: ");
        out.push_str(&body.len().to_string());
        for (name, value) in headers {
            out.push_str("\r\n");
            out.push_str(name);
            out.push_str(": ");
            out.push_str(value);
        }
        out.push_str("\r\nconnection: keep-alive\r\n\r\n");
        out.push_str(body);
        self.stream.write_all(out.as_bytes())?;
        self.stream.flush()?;
        read_framed_response(&mut self.stream)
    }

    /// `GET path` on the kept-alive socket.
    ///
    /// # Errors
    /// See [`Connection::request`].
    pub fn get(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path, &[], "")
    }

    /// `POST path` with a JSON body on the kept-alive socket.
    ///
    /// # Errors
    /// See [`Connection::request`].
    pub fn post_json(
        &mut self,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        let mut all = vec![("content-type", "application/json")];
        all.extend_from_slice(headers);
        self.request("POST", path, &all, body)
    }
}

/// Reads one response head (byte-at-a-time until CRLFCRLF, never
/// over-reading into the next response) plus its `content-length` body.
fn read_framed_response(stream: &mut TcpStream) -> std::io::Result<HttpResponse> {
    let bad = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response");
    let eof = || std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "connection closed");
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte)? {
            0 => return Err(eof()),
            _ => head.push(byte[0]),
        }
        if head.len() > 64 * 1024 {
            return Err(bad());
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let mut resp = parse_response(&head).ok_or_else(bad)?;
    let content_length: usize = resp
        .header("content-length")
        .and_then(|v| v.parse().ok())
        .ok_or_else(bad)?;
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    resp.body = String::from_utf8_lossy(&body).into_owned();
    Ok(resp)
}

fn parse_response(raw: &[u8]) -> Option<HttpResponse> {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text.split_once("\r\n\r\n")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split_ascii_whitespace().nth(1)?.parse().ok()?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Some(HttpResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_framing() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\n\r\n{\"error\":\"shed\"}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.body, "{\"error\":\"shed\"}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_none());
    }
}
