//! A minimal, strict-enough JSON reader and string escaper.
//!
//! The serving layer's request bodies are tiny (`{"q": "...", "k": 5}`),
//! so a compact recursive-descent parser on `std` keeps the workspace
//! dependency-free. Depth is capped, input size is capped by the HTTP
//! layer, and every failure is a typed `Err` — never a panic (L001).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64` (ample for `k` and latencies).
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// A non-negative integral number, `None` otherwise.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // lint: allow(L007) fract()==0.0 is the exact integrality test, not a tolerance check
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out
}

const MAX_DEPTH: usize = 32;

/// Parses one JSON document (surrounding whitespace allowed).
///
/// # Errors
/// A short static description of the first syntax problem.
pub fn parse(input: &str) -> Result<Json, &'static str> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err("trailing characters after JSON document");
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), &'static str> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err("unexpected character")
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, &'static str> {
    if depth > MAX_DEPTH {
        return Err("JSON nesting too deep");
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input"),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null").map(|_| Json::Null),
        Some(_) => parse_num(bytes, pos).map(Json::Num),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &'static str) -> Result<(), &'static str> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err("malformed literal")
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<f64, &'static str> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number bytes")?;
    text.parse::<f64>().map_err(|_| "malformed number")
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, &'static str> {
    expect(bytes, pos, b'"').map_err(|_| "expected string")?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string");
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape");
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // surrogate pairs are out of scope for this
                        // workload; map them to the replacement char
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err("unknown escape"),
                }
            }
            _ => {
                // re-decode the UTF-8 sequence starting at b
                let len = utf8_len(b)?;
                let chunk = bytes
                    .get(*pos - 1..*pos - 1 + len)
                    .ok_or("truncated UTF-8 sequence")?;
                let s = std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8 in string")?;
                out.push_str(s);
                *pos += len - 1;
            }
        }
    }
}

fn utf8_len(first: u8) -> Result<usize, &'static str> {
    match first {
        0x00..=0x7F => Ok(1),
        0xC0..=0xDF => Ok(2),
        0xE0..=0xEF => Ok(3),
        0xF0..=0xF7 => Ok(4),
        _ => Err("invalid UTF-8 lead byte"),
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, &'static str> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err("expected ',' or ']' in array"),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, &'static str> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':').map_err(|_| "expected ':' in object")?;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err("expected ',' or '}' in object"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_lookup_request_shape() {
        let v = parse(r#"{"q": "germoney", "k": 5}"#).unwrap();
        assert_eq!(v.get("q").and_then(Json::as_str), Some("germoney"));
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(5));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_bulk_request_shape() {
        let v = parse(r#"{"queries": ["a", "b\nc"], "k": 2}"#).unwrap();
        let qs = v.get("queries").and_then(Json::as_arr).unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[1].as_str(), Some("b\nc"));
    }

    #[test]
    fn parses_nested_values_and_unicode() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": null, "d": true}, "e": "café über"}"#)
            .unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").and_then(Json::as_str), Some("café über"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{", "[1,", "\"open", "{\"k\" 1}", "tru", "{} extra", "{\"a\":01e}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
        assert_eq!(parse("-2").unwrap().as_u64(), None);
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f über";
        let doc = format!("{{\"s\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some(nasty));
    }
}
