//! Circuit breakers: per-shard ejection and the whole-service overload
//! pin.
//!
//! Both machines are deliberately **request-indexed, not wall-clocked**:
//! transitions fire on the accept-order request index (the same key the
//! fault harness replays on), so a seeded chaos run produces the exact
//! same open/half-open/close sequence at any pool width and on any
//! machine — the §8 determinism contract extended to failure handling.
//!
//! **Per-shard breaker** ([`ShardBreaker`]): `Closed → Open` after
//! `threshold` consecutive shard failures (deadline-miss, error, or
//! contained panic); `Open → HalfOpen` once `cooldown` requests have
//! passed since opening, admitting a single probe; a successful probe
//! re-admits the shard (`→ Closed`), a failed one re-opens it with a
//! fresh cooldown. While a shard is open, scatter-gather simply skips
//! it and the response is tagged partial (`x-emblookup-shards: k/N`).
//!
//! **Overload pin** ([`OverloadPin`]): when `/lookup` itself keeps
//! missing deadlines (`threshold` consecutive `504`s), the service pins
//! traffic to the degradation ladder's string rung — a cheap q-gram
//! answer beats a timeout during sustained overload. Every
//! `probe_interval`-th pinned request retries the full pipeline; the
//! first one to beat its deadline unpins.

/// Position of one breaker's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: the shard participates in every scatter-gather.
    Closed,
    /// Ejected: the shard is skipped until its cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe request is in flight.
    HalfOpen,
}

/// A state change reported by [`ShardBreaker::record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Closed → Open: consecutive failures reached the threshold.
    Opened,
    /// HalfOpen → Open: the probe failed; cooldown restarts.
    Reopened,
    /// HalfOpen → Closed: the probe succeeded; shard re-admitted.
    Readmitted,
}

/// Per-shard circuit breaker, driven by request indices.
#[derive(Debug)]
pub struct ShardBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: u64,
    threshold: u32,
    cooldown: u64,
}

impl ShardBreaker {
    /// A closed breaker that opens after `threshold` consecutive
    /// failures (min 1) and half-opens `cooldown` requests later.
    pub fn new(threshold: u32, cooldown: u64) -> Self {
        ShardBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: 0,
            threshold: threshold.max(1),
            cooldown: cooldown.max(1),
        }
    }

    /// Current state (after any cooldown transition applied by
    /// [`ShardBreaker::admit`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Decides whether the shard participates in request `idx`'s
    /// scatter-gather. An open breaker whose cooldown has elapsed
    /// transitions to half-open here and admits the probe.
    pub fn admit(&mut self, idx: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if idx.saturating_sub(self.opened_at) >= self.cooldown {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records the outcome of an admitted shard attempt for request
    /// `idx`; returns the transition it caused, if any.
    pub fn record(&mut self, idx: u64, ok: bool) -> Option<Transition> {
        match (self.state, ok) {
            (BreakerState::Closed, true) => {
                self.consecutive_failures = 0;
                None
            }
            (BreakerState::Closed, false) => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = idx;
                    Some(Transition::Opened)
                } else {
                    None
                }
            }
            (BreakerState::HalfOpen, true) => {
                self.state = BreakerState::Closed;
                self.consecutive_failures = 0;
                Some(Transition::Readmitted)
            }
            (BreakerState::HalfOpen, false) => {
                self.state = BreakerState::Open;
                self.opened_at = idx;
                Some(Transition::Reopened)
            }
            // Not admitted, so nothing to record; tolerated rather than
            // panicking because a racing caller is a metrics bug, not a
            // correctness bug.
            (BreakerState::Open, _) => None,
        }
    }
}

/// An event reported by [`OverloadPin::record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinEvent {
    /// Consecutive deadline misses reached the threshold: traffic is
    /// now pinned to the string rung.
    Pinned,
    /// A full-pipeline attempt beat its deadline: pin released.
    Unpinned,
}

/// Whole-service breaker that pins sustained overload to the ladder's
/// string rung instead of timing every request out.
#[derive(Debug)]
pub struct OverloadPin {
    consecutive_misses: u32,
    pinned: bool,
    pinned_at: u64,
    threshold: u32,
    probe_interval: u64,
}

impl OverloadPin {
    /// An unpinned breaker. `threshold == 0` disables pinning entirely;
    /// `probe_interval` (min 1) is how often a pinned service retries
    /// the full pipeline.
    pub fn new(threshold: u32, probe_interval: u64) -> Self {
        OverloadPin {
            consecutive_misses: 0,
            pinned: false,
            pinned_at: 0,
            threshold,
            probe_interval: probe_interval.max(1),
        }
    }

    /// True while traffic is pinned to the string rung.
    pub fn is_pinned(&self) -> bool {
        self.pinned
    }

    /// Should request `idx` answer from the string rung? Returns
    /// `false` both when unpinned and for the periodic full-pipeline
    /// probe a pinned service still sends.
    pub fn pin(&self, idx: u64) -> bool {
        if !self.pinned {
            return false;
        }
        !idx.saturating_sub(self.pinned_at).is_multiple_of(self.probe_interval)
    }

    /// Records the outcome of a request that ran the full pipeline
    /// (including probes): `miss` means it exhausted its deadline.
    pub fn record(&mut self, idx: u64, miss: bool) -> Option<PinEvent> {
        if self.threshold == 0 {
            return None;
        }
        if miss {
            self.consecutive_misses += 1;
            if !self.pinned && self.consecutive_misses >= self.threshold {
                self.pinned = true;
                self.pinned_at = idx;
                return Some(PinEvent::Pinned);
            }
            None
        } else {
            self.consecutive_misses = 0;
            if self.pinned {
                self.pinned = false;
                Some(PinEvent::Unpinned)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_opens_after_threshold_consecutive_failures() {
        let mut b = ShardBreaker::new(3, 5);
        assert!(b.admit(0));
        assert_eq!(b.record(0, false), None);
        assert_eq!(b.record(1, true), None, "a success resets the streak");
        assert_eq!(b.record(2, false), None);
        assert_eq!(b.record(3, false), None);
        assert_eq!(b.record(4, false), Some(Transition::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(5), "open breaker skips the shard");
    }

    #[test]
    fn open_half_opens_after_cooldown_and_readmits_on_probe_success() {
        let mut b = ShardBreaker::new(1, 4);
        assert_eq!(b.record(10, false), Some(Transition::Opened));
        assert!(!b.admit(11));
        assert!(!b.admit(13), "cooldown not yet elapsed");
        assert!(b.admit(14), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.record(14, true), Some(Transition::Readmitted));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit(15));
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let mut b = ShardBreaker::new(1, 4);
        assert_eq!(b.record(0, false), Some(Transition::Opened));
        assert!(b.admit(4));
        assert_eq!(b.record(4, false), Some(Transition::Reopened));
        assert!(!b.admit(7), "cooldown restarts from the failed probe");
        assert!(b.admit(8));
    }

    #[test]
    fn breaker_sequence_is_a_pure_function_of_the_request_stream() {
        let run = || {
            let mut b = ShardBreaker::new(2, 3);
            let outcomes = [false, false, true, false, false, true, true];
            let mut log = Vec::new();
            for (i, ok) in outcomes.iter().enumerate() {
                let idx = i as u64;
                let admitted = b.admit(idx);
                let t = if admitted { b.record(idx, *ok) } else { None };
                log.push((admitted, t, b.state()));
            }
            log
        };
        assert_eq!(run(), run(), "same stream, same transitions, always");
    }

    #[test]
    fn overload_pin_engages_after_threshold_and_probes_periodically() {
        let mut p = OverloadPin::new(2, 3);
        assert!(!p.pin(0));
        assert_eq!(p.record(0, false), None, "a hit resets nothing");
        assert_eq!(p.record(1, true), None, "first miss is under threshold");
        assert_eq!(p.record(2, true), Some(PinEvent::Pinned));
        assert!(p.is_pinned());
        assert!(p.pin(3), "pinned requests answer from the string rung");
        assert!(p.pin(4));
        assert!(!p.pin(5), "every probe_interval-th request probes the full path");
        assert_eq!(p.record(5, true), None, "missed probe keeps the pin");
        assert!(p.pin(6));
        assert!(!p.pin(8));
        assert_eq!(p.record(8, true), None);
        assert!(!p.pin(11));
        assert_eq!(p.record(11, false), Some(PinEvent::Unpinned));
        assert!(!p.is_pinned());
        assert!(!p.pin(12));
    }

    #[test]
    fn zero_threshold_disables_the_pin() {
        let mut p = OverloadPin::new(0, 4);
        for i in 0..32 {
            assert_eq!(p.record(i, true), None);
            assert_eq!(p.record(i, false), None);
            assert!(!p.pin(i));
        }
        assert!(!p.is_pinned());
    }
}
