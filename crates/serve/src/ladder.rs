//! The graceful-degradation ladder.
//!
//! When the deadline budget runs short — or the primary backend errors
//! or poisons its answer — the server steps down a rung instead of
//! failing the request:
//!
//! 1. **full** — the trained PQ/ANN index (normal operation).
//! 2. **flat** — exact flat search over a capped candidate set of
//!    entity-label embeddings, built once at startup.
//! 3. **qgram** — q-gram Jaccard string similarity over the capped
//!    label set; needs no embedding at all, so it also rescues
//!    requests whose budget can't afford the encode stage.
//!
//! Every rung is deterministic: flat search is exact, and the q-gram
//! rung breaks score ties by entity id, so responses are bit-identical
//! across pool widths and repeat runs.

use emblookup_ann::{FlatIndex, VectorSet};
use emblookup_core::EmbLookup;
use emblookup_kg::{EntityId, KnowledgeGraph};
use emblookup_text::distance::qgram_jaccard;

/// Which rung of the ladder answered a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// The trained PQ/ANN index.
    Full,
    /// Exact flat search on the capped candidate set.
    Flat,
    /// Q-gram string similarity on the capped label set.
    Qgram,
}

impl Rung {
    /// Stable lower-case name used in responses and metric mapping.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Full => "full",
            Rung::Flat => "flat",
            Rung::Qgram => "qgram",
        }
    }
}

/// Startup-built fallback structures backing the flat and q-gram rungs.
#[derive(Debug)]
pub struct Ladder {
    flat: FlatIndex,
    flat_ids: Vec<EntityId>,
    labels: Vec<(EntityId, String)>,
    qgram_q: usize,
}

impl Ladder {
    /// Embeds the first `cap` entity labels with the trained model and
    /// builds the fallback index plus the label table. `cap` bounds
    /// both memory and worst-case fallback latency.
    pub fn build(service: &EmbLookup, kg: &KnowledgeGraph, cap: usize) -> Self {
        let take = kg.num_entities().min(cap);
        let mut flat_ids = Vec::with_capacity(take);
        let mut labels = Vec::with_capacity(take);
        for entity in kg.entities().take(take) {
            flat_ids.push(entity.id);
            labels.push((entity.id, entity.label.clone()));
        }
        let refs: Vec<&str> = labels.iter().map(|(_, l)| l.as_str()).collect();
        // threads = 1: the fallback set is small and sequential
        // embedding keeps startup independent of pool configuration.
        let embedded = service.model().embed_batch(&refs, 1);
        let mut vectors = VectorSet::new(service.model().dim().max(1));
        for v in &embedded {
            vectors.push(v);
        }
        Ladder {
            flat: FlatIndex::new(vectors),
            flat_ids,
            labels,
            qgram_q: 3,
        }
    }

    /// Number of entities covered by the fallback rungs.
    pub fn len(&self) -> usize {
        self.flat_ids.len()
    }

    /// True when no fallback candidates exist.
    pub fn is_empty(&self) -> bool {
        self.flat_ids.is_empty()
    }

    /// Exact flat search over the capped set; scores are negated
    /// squared L2 distances (higher = better), matching the full rung's
    /// score convention.
    pub fn flat_search(&self, query_emb: &[f32], k: usize) -> Vec<(EntityId, f32)> {
        self.flat
            .search(query_emb, k)
            .into_iter()
            .map(|n| (self.flat_ids[n.index], -n.dist))
            .collect()
    }

    /// Q-gram Jaccard similarity search over the capped label set;
    /// scores are similarities in `[0, 1]`. Ties break by entity id so
    /// the ordering is total and reproducible.
    pub fn qgram_search(&self, q: &str, k: usize) -> Vec<(EntityId, f32)> {
        let mut scored: Vec<(EntityId, f32)> = self
            .labels
            .iter()
            .map(|(id, label)| (*id, qgram_jaccard(q, label, self.qgram_q) as f32))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_core::EmbLookupConfig;
    use emblookup_kg::{generate, SynthKgConfig};

    fn small_service() -> &'static (EmbLookup, KnowledgeGraph) {
        use std::sync::OnceLock;
        static SHARED: OnceLock<(EmbLookup, KnowledgeGraph)> = OnceLock::new();
        SHARED.get_or_init(|| {
            let synth = generate(SynthKgConfig::tiny(41));
            let service = EmbLookup::train_on(&synth.kg, EmbLookupConfig::tiny(41));
            (service, synth.kg)
        })
    }

    #[test]
    fn build_respects_cap() {
        let (service, kg) = small_service();
        let ladder = Ladder::build(service, kg, 5);
        assert_eq!(ladder.len(), 5.min(kg.num_entities()));
        assert!(!ladder.is_empty());
    }

    #[test]
    fn flat_search_returns_scored_candidates() {
        let (service, kg) = small_service();
        let ladder = Ladder::build(service, kg, 64);
        let emb = service.model().embed(kg.label(EntityId(0)));
        let hits = ladder.flat_search(&emb, 3);
        assert!(!hits.is_empty() && hits.len() <= 3);
        // scores descend (less-negative first)
        for w in hits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn qgram_search_ranks_exact_label_first() {
        let (service, kg) = small_service();
        let ladder = Ladder::build(service, kg, 64);
        let label = kg.label(EntityId(2)).to_string();
        let hits = ladder.qgram_search(&label, 5);
        assert_eq!(hits[0].0, EntityId(2), "exact label must win the q-gram rung");
        assert!((hits[0].1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn qgram_search_is_deterministic() {
        let (service, kg) = small_service();
        let ladder = Ladder::build(service, kg, 64);
        let a = ladder.qgram_search("germoney", 10);
        let b = ladder.qgram_search("germoney", 10);
        assert_eq!(a, b);
    }
}
