//! End-to-end tests of sharded keep-alive serving: scatter-gather over
//! hash-partitioned shards, per-shard circuit breakers, partial-result
//! tagging, the whole-service overload pin, and shed-retry jitter.
//!
//! `scripts/ci.sh` runs this suite under both `EMBLOOKUP_THREADS=1`
//! and the default thread count — the global pool the scatter fans out
//! on — so everything asserted here must be width-independent.

use emblookup_core::{EmbLookup, EmbLookupConfig, EmbLookupModel};
use emblookup_kg::{generate, EntityId, KnowledgeGraph, SynthKgConfig};
use emblookup_obs::{names, MetricsRegistry};
use emblookup_serve::{client, FaultConfig, ServeConfig, Server, StageFaults};
use std::sync::{Arc, OnceLock};

fn shared_model() -> &'static (Arc<EmbLookupModel>, KnowledgeGraph) {
    static SHARED: OnceLock<(Arc<EmbLookupModel>, KnowledgeGraph)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let synth = generate(SynthKgConfig::tiny(77));
        let service = EmbLookup::train_on(&synth.kg, EmbLookupConfig::tiny(77));
        (service.model_arc(), synth.kg)
    })
}

fn start(config: ServeConfig) -> (Server, Arc<MetricsRegistry>) {
    let (model, kg) = shared_model();
    let compression = model.config().compression;
    let service = EmbLookup::from_model(Arc::clone(model), kg, compression);
    let registry = Arc::new(MetricsRegistry::new());
    let server = Server::start_with_registry(service, kg, config, Arc::clone(&registry))
        .expect("server must start");
    (server, registry)
}

fn counter(registry: &MetricsRegistry, name: &str) -> u64 {
    registry.snapshot().counter(name).unwrap_or(0)
}

fn lookup_body(entity: u32) -> String {
    let (_, kg) = shared_model();
    format!("{{\"q\":\"{}\",\"k\":3}}", kg.label(EntityId(entity)))
}

/// A scripted plan injecting a panic into shard `target % shards` for
/// the first `n` requests, then nothing for the rest of `len`.
fn shard_panic_plan(target: u32, n: usize, len: usize) -> FaultConfig {
    let mut plan = vec![StageFaults::default(); len];
    for slot in plan.iter_mut().take(n) {
        slot.shard_panic = Some(target);
    }
    FaultConfig::Scripted {
        plan,
        virtual_time: true,
    }
}

#[test]
fn sharded_lookup_answers_full_rung_with_full_coverage_tag() {
    let (server, registry) = start(ServeConfig {
        workers: 2,
        shards: 4,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let (_, kg) = shared_model();

    let resp = client::post_json(addr, "/lookup", &lookup_body(0), &[]).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert!(resp.body.contains("\"rung\":\"full\""), "body: {}", resp.body);
    assert_eq!(resp.header("x-emblookup-shards"), Some("4/4"));
    let label = kg.label(EntityId(0));
    assert!(
        resp.body.contains(&format!("\"label\":\"{label}\"")),
        "queried label must be found: {}",
        resp.body
    );

    // Bulk goes through the same scatter and carries the same tag.
    let bulk = format!(
        "{{\"queries\":[\"{}\",\"{}\"],\"k\":2}}",
        kg.label(EntityId(1)),
        kg.label(EntityId(2)),
    );
    let resp = client::post_json(addr, "/lookup/bulk", &bulk, &[]).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(resp.header("x-emblookup-shards"), Some("4/4"));

    assert_eq!(counter(&registry, names::SERVE_PARTIAL), 0);
    assert_eq!(registry.snapshot().gauge(names::SERVE_SHARDS_LIVE), Some(4.0));
}

#[test]
fn keep_alive_connection_serves_many_requests() {
    let (server, registry) = start(ServeConfig {
        workers: 2,
        shards: 2,
        ..ServeConfig::default()
    });

    let mut conn = client::Connection::open(server.addr()).unwrap();
    for i in 0..3u32 {
        let resp = conn.post_json("/lookup", &lookup_body(i), &[]).unwrap();
        assert_eq!(resp.status, 200, "request {i}: {}", resp.body);
        assert_eq!(resp.header("x-emblookup-shards"), Some("2/2"));
    }
    // Control plane rides the same persistent connection.
    let health = conn.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let resp = conn.post_json("/lookup", &lookup_body(3), &[]).unwrap();
    assert_eq!(resp.status, 200);
    drop(conn);

    assert_eq!(counter(&registry, names::SERVE_CONNECTIONS), 1);
    assert_eq!(counter(&registry, names::SERVE_ADMITTED), 4);
}

/// The breaker walk: panics eject one shard (responses degrade to
/// partial, never fail), the cooldown admits a half-open probe, and a
/// healthy probe re-admits the shard.
#[test]
fn breaker_ejects_shard_then_readmits_after_probe() {
    let (server, registry) = start(ServeConfig {
        workers: 1,
        shards: 2,
        breaker_threshold: 2,
        breaker_cooldown: 3,
        faults: Some(shard_panic_plan(0, 2, 8)),
        ..ServeConfig::default()
    });
    let mut conn = client::Connection::open(server.addr()).unwrap();

    // Requests 0–1: shard 0 panics; both answers are partial 200s and
    // the second failure opens the breaker.
    for i in 0..2u32 {
        let resp = conn.post_json("/lookup", &lookup_body(i), &[]).unwrap();
        assert_eq!(resp.status, 200, "request {i}: {}", resp.body);
        assert_eq!(resp.header("x-emblookup-shards"), Some("1/2"), "request {i}");
        assert!(resp.body.contains("\"rung\":\"full\""));
    }
    assert_eq!(counter(&registry, names::SERVE_BREAKER_OPENED), 1);
    assert_eq!(registry.snapshot().gauge(names::SERVE_SHARDS_LIVE), Some(1.0));

    // Requests 2–3: breaker open, shard skipped without being attempted.
    for i in 2..4u32 {
        let resp = conn.post_json("/lookup", &lookup_body(i), &[]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-emblookup-shards"), Some("1/2"), "request {i}");
    }
    assert_eq!(counter(&registry, names::SERVE_BREAKER_PROBES), 0);

    // Request 4: cooldown elapsed (opened at 1, cooldown 3) — the
    // half-open probe runs against a now-healthy shard and re-admits it.
    let resp = conn.post_json("/lookup", &lookup_body(0), &[]).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-emblookup-shards"), Some("2/2"));
    assert_eq!(counter(&registry, names::SERVE_BREAKER_PROBES), 1);
    assert_eq!(counter(&registry, names::SERVE_BREAKER_READMITTED), 1);
    assert_eq!(registry.snapshot().gauge(names::SERVE_SHARDS_LIVE), Some(2.0));

    // Request 5: steady state again.
    let resp = conn.post_json("/lookup", &lookup_body(1), &[]).unwrap();
    assert_eq!(resp.header("x-emblookup-shards"), Some("2/2"));

    assert_eq!(counter(&registry, names::SERVE_PARTIAL), 4);
    assert_eq!(counter(&registry, names::SERVE_PANICS), 2);
    assert_eq!(counter(&registry, names::SERVE_ERRORS), 0, "no request failed");
}

/// With every shard ejected the full rung has nothing to scatter to:
/// the ladder steps down to the flat fallback instead of failing.
#[test]
fn all_shards_ejected_falls_back_to_flat() {
    let mut plan = vec![StageFaults::default(); 4];
    plan[0].shard_panic = Some(0);
    plan[1].shard_panic = Some(1);
    let (server, registry) = start(ServeConfig {
        workers: 1,
        shards: 2,
        breaker_threshold: 1,
        breaker_cooldown: 100,
        faults: Some(FaultConfig::Scripted {
            plan,
            virtual_time: true,
        }),
        ..ServeConfig::default()
    });
    let mut conn = client::Connection::open(server.addr()).unwrap();

    for i in 0..2u32 {
        let resp = conn.post_json("/lookup", &lookup_body(i), &[]).unwrap();
        assert_eq!(resp.status, 200, "request {i}: {}", resp.body);
    }
    assert_eq!(counter(&registry, names::SERVE_BREAKER_OPENED), 2);

    let resp = conn.post_json("/lookup", &lookup_body(2), &[]).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(resp.header("x-emblookup-shards"), Some("0/2"));
    assert!(resp.body.contains("\"rung\":\"flat\""), "body: {}", resp.body);
    assert!(resp.body.contains("\"degraded\":true"));
    assert_eq!(registry.snapshot().gauge(names::SERVE_SHARDS_LIVE), Some(0.0));

    // Bulk has no ladder: all shards gone is an honest 500, tagged.
    let bulk = "{\"queries\":[\"x\"],\"k\":1}";
    let resp = conn.post_json("/lookup/bulk", bulk, &[]).unwrap();
    assert_eq!(resp.status, 500);
    assert_eq!(resp.header("x-emblookup-shards"), Some("0/2"));
}

/// Sustained deadline misses pin the service to the string rung; the
/// periodic probe unpins once the full pipeline beats its budget again.
#[test]
fn overload_pins_to_string_rung_and_probe_unpins() {
    // Budget 100 virtual ms; encode latency 130 guarantees a miss.
    let stall = StageFaults {
        encode_latency_ms: 130,
        ..StageFaults::default()
    };
    let mut plan = vec![stall; 5];
    plan.extend(vec![StageFaults::default(); 5]);
    let (server, registry) = start(ServeConfig {
        workers: 1,
        default_deadline_ms: 100,
        overload_threshold: 2,
        overload_probe_interval: 3,
        faults: Some(FaultConfig::Scripted {
            plan,
            virtual_time: true,
        }),
        ..ServeConfig::default()
    });
    let mut conn = client::Connection::open(server.addr()).unwrap();
    let mut outcomes = Vec::new();
    for i in 0..8u32 {
        let resp = conn.post_json("/lookup", &lookup_body(i % 4), &[]).unwrap();
        outcomes.push((
            resp.status,
            resp.header("x-emblookup-overload").map(str::to_string),
        ));
    }
    let pinned = Some("pinned".to_string());
    assert_eq!(
        outcomes,
        vec![
            (504, None),          // miss 1
            (504, None),          // miss 2: pin engages (pinned_at = 1)
            (200, pinned.clone()), // pinned: q-gram answer
            (200, pinned.clone()), // pinned
            (504, None),          // probe ((4-1)%3==0) still stalled
            (200, pinned.clone()), // pinned
            (200, pinned), // pinned
            (200, None),   // probe ((7-1)%3==0) beats its budget: unpinned
        ],
        "pin walk diverged"
    );
    assert_eq!(counter(&registry, names::SERVE_OVERLOAD_PINNED), 4);
}

/// Shed responses spread their retry hints: deterministic per request
/// index, bounded to [base/2, 3*base/2], and not all identical — a
/// herd of shed clients must not stampede back in lockstep.
#[test]
fn shed_retry_jitter_is_bounded_spread_and_deterministic() {
    let collect = || {
        let (server, _registry) = start(ServeConfig {
            workers: 1,
            queue_cap: 0,
            shards: 2,
            ..ServeConfig::default()
        });
        let mut conn = client::Connection::open(server.addr()).unwrap();
        let mut retries = Vec::new();
        for i in 0..8u32 {
            let resp = conn.post_json("/lookup", &lookup_body(i % 4), &[]).unwrap();
            assert_eq!(resp.status, 429);
            let ms: u64 = resp
                .header("x-emblookup-retry-after-ms")
                .expect("shed responses carry the exact retry hint")
                .parse()
                .unwrap();
            retries.push(ms);
        }
        retries
    };
    let first = collect();
    for &ms in &first {
        assert!((500..=1500).contains(&ms), "retry {ms}ms out of bounds");
    }
    let distinct: std::collections::BTreeSet<u64> = first.iter().copied().collect();
    assert!(
        distinct.len() >= 4,
        "jitter must spread the herd, got {first:?}"
    );
    assert_eq!(first, collect(), "same indices, same jitter, always");
}

/// The §8 determinism contract extended to shards: a serialized request
/// stream — including shard faults, breaker transitions, and partial
/// results — produces byte-identical responses at any worker count.
/// (`scripts/ci.sh` re-runs this whole suite at `EMBLOOKUP_THREADS=1`
/// and default, varying the scatter pool's width too.)
#[test]
fn sharded_chaos_responses_are_byte_identical_across_worker_counts() {
    let mut plan = vec![StageFaults::default(); 10];
    plan[0].shard_panic = Some(1);
    plan[1].shard_latency = Some((1, 400)); // stall > slice: deadline miss
    plan[2].shard_panic = Some(1); // third strike: breaker opens
    plan[5].shard_latency = Some((0, 5)); // small stall, absorbed
    let config = |workers| ServeConfig {
        workers,
        shards: 3,
        breaker_threshold: 3,
        breaker_cooldown: 4,
        default_deadline_ms: 200,
        faults: Some(FaultConfig::Scripted {
            plan: plan.clone(),
            virtual_time: true,
        }),
        ..ServeConfig::default()
    };
    let (narrow, _) = start(config(1));
    let (wide, _) = start(config(4));
    let mut narrow_conn = client::Connection::open(narrow.addr()).unwrap();
    let mut wide_conn = client::Connection::open(wide.addr()).unwrap();

    for i in 0..10u32 {
        let body = lookup_body(i % 4);
        let a = narrow_conn.post_json("/lookup", &body, &[]).unwrap();
        let b = wide_conn.post_json("/lookup", &body, &[]).unwrap();
        assert_eq!(a.status, b.status, "request {i} status diverged");
        assert_eq!(a.body, b.body, "request {i} body diverged");
        assert_eq!(
            a.header("x-emblookup-shards"),
            b.header("x-emblookup-shards"),
            "request {i} shard tag diverged"
        );
    }
}
