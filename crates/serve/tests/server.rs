//! End-to-end tests of the hardened serving layer, driven over real
//! TCP sockets with the crate's own client.
//!
//! One tiny EmbLookup model is trained once and shared; each server
//! instance gets its own `EmbLookup` rebuilt from the shared model (an
//! exact, deterministic operation) plus a private metrics registry so
//! counter assertions cannot interfere across tests.
//!
//! `scripts/ci.sh` runs this suite under both `EMBLOOKUP_THREADS=1`
//! and the default thread count: everything asserted here — statuses,
//! rung order, counter values, response bytes — must hold at any pool
//! width.

use emblookup_core::{EmbLookup, EmbLookupConfig, EmbLookupModel};
use emblookup_kg::{generate, KnowledgeGraph, SynthKgConfig};
use emblookup_obs::{names, MetricsRegistry};
use emblookup_serve::{client, FaultConfig, ServeConfig, Server, StageFaults};
use std::sync::{Arc, OnceLock};

fn shared_model() -> &'static (Arc<EmbLookupModel>, KnowledgeGraph) {
    static SHARED: OnceLock<(Arc<EmbLookupModel>, KnowledgeGraph)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let synth = generate(SynthKgConfig::tiny(77));
        let service = EmbLookup::train_on(&synth.kg, EmbLookupConfig::tiny(77));
        (service.model_arc(), synth.kg)
    })
}

fn fresh_service() -> (EmbLookup, &'static KnowledgeGraph) {
    let (model, kg) = shared_model();
    let compression = model.config().compression;
    (EmbLookup::from_model(Arc::clone(model), kg, compression), kg)
}

fn start(config: ServeConfig) -> (Server, Arc<MetricsRegistry>) {
    let (service, kg) = fresh_service();
    let registry = Arc::new(MetricsRegistry::new());
    let server = Server::start_with_registry(service, kg, config, Arc::clone(&registry))
        .expect("server must start");
    (server, registry)
}

fn counter(registry: &MetricsRegistry, name: &str) -> u64 {
    registry.snapshot().counter(name).unwrap_or(0)
}

#[test]
fn smoke_healthz_metrics_lookup_and_bulk() {
    let (server, registry) = start(ServeConfig {
        workers: 2,
        queue_cap: 8,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\":\"ok\"}");

    let (_, kg) = shared_model();
    let label = kg.label(emblookup_kg::EntityId(0));
    let body = format!("{{\"q\":\"{}\",\"k\":3}}", label);
    let resp = client::post_json(addr, "/lookup", &body, &[]).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert!(resp.body.contains("\"rung\":\"full\""), "body: {}", resp.body);
    assert!(resp.body.contains("\"degraded\":false"));
    assert!(resp.body.contains("\"results\":["));

    let bulk = format!(
        "{{\"queries\":[\"{}\",\"{}\"],\"k\":2}}",
        kg.label(emblookup_kg::EntityId(1)),
        kg.label(emblookup_kg::EntityId(2)),
    );
    let resp = client::post_json(addr, "/lookup/bulk", &bulk, &[]).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert!(resp.body.contains("\"rung\":\"full\""));

    // Prometheus exposition carries the whole serve.* family.
    let metrics = client::get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    for series in [
        "emblookup_serve_requests_total",
        "emblookup_serve_admitted_total",
        "emblookup_serve_shed_total",
        "emblookup_serve_errors_total",
        "emblookup_serve_deadline_exceeded_total",
        "emblookup_serve_degraded_flat_total",
        "emblookup_serve_degraded_qgram_total",
        "emblookup_serve_panics_total",
        "emblookup_serve_queue_depth",
        "emblookup_serve_latency_seconds",
    ] {
        assert!(metrics.body.contains(series), "missing {series} in:\n{}", metrics.body);
    }

    assert_eq!(counter(&registry, names::SERVE_ADMITTED), 2);
    assert_eq!(counter(&registry, names::SERVE_SHED), 0);
    // healthz + metrics + 2 POSTs, at least (metrics GET above counts itself)
    assert!(counter(&registry, names::SERVE_REQUESTS) >= 4);
}

#[test]
fn zero_capacity_queue_sheds_posts_but_serves_control_plane() {
    let (server, registry) = start(ServeConfig {
        workers: 1,
        queue_cap: 0,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let resp = client::post_json(addr, "/lookup", "{\"q\":\"x\",\"k\":1}", &[]).unwrap();
    assert_eq!(resp.status, 429);
    // Jittered retry hints: whole seconds in the standard header, exact
    // milliseconds (within [base/2, 3*base/2]) in the extension header.
    let retry_s: u64 = resp.header("retry-after").unwrap().parse().unwrap();
    assert!((1..=2).contains(&retry_s), "retry-after {retry_s}s");
    let retry_ms: u64 = resp
        .header("x-emblookup-retry-after-ms")
        .unwrap()
        .parse()
        .unwrap();
    assert!((500..=1500).contains(&retry_ms), "retry-after {retry_ms}ms");
    assert!(resp.body.contains("\"error\":\"shed\""));

    // Shedding the data plane must not take down the control plane.
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
    let metrics = client::get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("emblookup_serve_shed_total 1"));

    assert_eq!(counter(&registry, names::SERVE_SHED), 1);
    assert_eq!(counter(&registry, names::SERVE_ADMITTED), 0);
}

/// Budget 100 virtual ms; escalating injected encode latency walks the
/// ladder one rung per request: full → flat → qgram → 504.
fn escalating_plan() -> FaultConfig {
    let lat = |ms| StageFaults {
        encode_latency_ms: ms,
        ..StageFaults::default()
    };
    FaultConfig::Scripted {
        plan: vec![lat(0), lat(60), lat(90), lat(130)],
        virtual_time: true,
    }
}

#[test]
fn ladder_engages_in_order_under_escalating_latency() {
    let (server, registry) = start(ServeConfig {
        workers: 2,
        default_deadline_ms: 100,
        faults: Some(escalating_plan()),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let (_, kg) = shared_model();
    let body = format!("{{\"q\":\"{}\",\"k\":3}}", kg.label(emblookup_kg::EntityId(0)));

    let mut statuses = Vec::new();
    let mut rungs = Vec::new();
    for _ in 0..4 {
        let resp = client::post_json(addr, "/lookup", &body, &[]).unwrap();
        statuses.push(resp.status);
        rungs.push(
            ["\"rung\":\"full\"", "\"rung\":\"flat\"", "\"rung\":\"qgram\""]
                .iter()
                .find(|tag| resp.body.contains(*tag))
                .map(|tag| tag.split('"').nth(3).unwrap_or("").to_string()),
        );
    }
    assert_eq!(statuses, vec![200, 200, 200, 504]);
    assert_eq!(
        rungs,
        vec![
            Some("full".to_string()),
            Some("flat".to_string()),
            Some("qgram".to_string()),
            None
        ]
    );

    // Counters must agree exactly with the rungs taken.
    assert_eq!(counter(&registry, names::SERVE_DEGRADED_FLAT), 1);
    assert_eq!(counter(&registry, names::SERVE_DEGRADED_QGRAM), 1);
    assert_eq!(counter(&registry, names::SERVE_DEADLINE_EXCEEDED), 1);
    assert_eq!(counter(&registry, names::SERVE_PANICS), 0);
    assert_eq!(counter(&registry, names::SERVE_ADMITTED), 4);
}

#[test]
fn deadline_response_names_the_stage() {
    let (server, _registry) = start(ServeConfig {
        workers: 1,
        default_deadline_ms: 100,
        faults: Some(FaultConfig::Scripted {
            plan: vec![StageFaults {
                admit_latency_ms: 150,
                ..StageFaults::default()
            }],
            virtual_time: true,
        }),
        ..ServeConfig::default()
    });
    let resp = client::post_json(server.addr(), "/lookup", "{\"q\":\"x\"}", &[]).unwrap();
    assert_eq!(resp.status, 504);
    assert_eq!(
        resp.body,
        "{\"error\":\"deadline\",\"stage\":\"admit\",\"budget_ms\":100}"
    );
}

#[test]
fn backend_error_and_poison_degrade_to_flat() {
    let (server, registry) = start(ServeConfig {
        workers: 2,
        faults: Some(FaultConfig::Scripted {
            plan: vec![
                StageFaults { backend_error: true, ..StageFaults::default() },
                StageFaults { poison: true, ..StageFaults::default() },
            ],
            virtual_time: true,
        }),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let (_, kg) = shared_model();
    let body = format!("{{\"q\":\"{}\",\"k\":3}}", kg.label(emblookup_kg::EntityId(3)));

    for expected in ["backend error", "poisoned scores"] {
        let resp = client::post_json(addr, "/lookup", &body, &[]).unwrap();
        assert_eq!(resp.status, 200, "{expected}: {}", resp.body);
        assert!(
            resp.body.contains("\"rung\":\"flat\""),
            "{expected} should degrade to flat: {}",
            resp.body
        );
        assert!(!resp.body.contains("NaN"), "poison must never leak: {}", resp.body);
    }
    assert_eq!(counter(&registry, names::SERVE_DEGRADED_FLAT), 2);
}

#[test]
fn panicking_backend_costs_one_500_then_serving_continues() {
    let (server, registry) = start(ServeConfig {
        workers: 2,
        faults: Some(FaultConfig::Scripted {
            // Only request 0 panics; the plan is long enough that the
            // follow-up requests stay clean instead of cycling back
            // into the fault.
            plan: vec![
                StageFaults { panic_in_search: true, ..StageFaults::default() },
                StageFaults::default(),
                StageFaults::default(),
                StageFaults::default(),
                StageFaults::default(),
            ],
            virtual_time: true,
        }),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let (_, kg) = shared_model();
    let body = format!("{{\"q\":\"{}\",\"k\":3}}", kg.label(emblookup_kg::EntityId(0)));

    let first = client::post_json(addr, "/lookup", &body, &[]).unwrap();
    assert_eq!(first.status, 500, "body: {}", first.body);
    assert!(first.body.contains("contained"));
    assert_eq!(counter(&registry, names::SERVE_PANICS), 1);

    // The panic was contained to that one request: the server still
    // answers the data plane and the control plane.
    for _ in 0..3 {
        let resp = client::post_json(addr, "/lookup", &body, &[]).unwrap();
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        assert!(resp.body.contains("\"rung\":\"full\""));
    }
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
    assert_eq!(counter(&registry, names::SERVE_PANICS), 1);
}

#[test]
fn responses_bit_identical_across_pool_widths() {
    // Same model, same fault script, same request sequence — the only
    // variable is the worker-pool width. Every response body must match
    // byte for byte (the determinism contract of DESIGN.md §7 extended
    // to the serving layer).
    let plan = FaultConfig::Scripted {
        plan: vec![
            StageFaults::default(),
            StageFaults { encode_latency_ms: 60, ..StageFaults::default() },
            StageFaults { encode_latency_ms: 90, ..StageFaults::default() },
            StageFaults { backend_error: true, ..StageFaults::default() },
            StageFaults { poison: true, ..StageFaults::default() },
            StageFaults { encode_latency_ms: 130, ..StageFaults::default() },
        ],
        virtual_time: true,
    };
    let config = |workers| ServeConfig {
        workers,
        default_deadline_ms: 100,
        faults: Some(plan.clone()),
        ..ServeConfig::default()
    };
    let (narrow, _) = start(config(1));
    let (wide, _) = start(config(4));
    let (_, kg) = shared_model();

    let queries: Vec<String> = (0..6u32)
        .map(|i| kg.label(emblookup_kg::EntityId(i % 4)).to_string())
        .collect();
    for (i, q) in queries.iter().enumerate() {
        let body = format!("{{\"q\":\"{q}\",\"k\":5}}");
        let a = client::post_json(narrow.addr(), "/lookup", &body, &[]).unwrap();
        let b = client::post_json(wide.addr(), "/lookup", &body, &[]).unwrap();
        assert_eq!(a.status, b.status, "request {i} status diverged");
        assert_eq!(a.body, b.body, "request {i} body diverged");
    }
}

#[test]
fn seeded_random_faults_never_crash_or_hang() {
    let (server, registry) = start(ServeConfig {
        workers: 2,
        default_deadline_ms: 100,
        faults: Some(FaultConfig::Random {
            seed: 2026,
            latency_prob: 0.6,
            max_latency_ms: 160,
            backend_error_prob: 0.25,
            poison_prob: 0.25,
            panic_prob: 0.15,
            shed_prob: 0.0,
            shard_fault_prob: 0.0,
            virtual_time: true,
        }),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let (_, kg) = shared_model();

    for i in 0..40u32 {
        let body = format!("{{\"q\":\"{}\",\"k\":3}}", kg.label(emblookup_kg::EntityId(i % 4)));
        let resp = client::post_json(addr, "/lookup", &body, &[]).unwrap();
        assert!(
            matches!(resp.status, 200 | 500 | 504),
            "request {i} got unexpected status {}: {}",
            resp.status,
            resp.body
        );
    }
    // Every admitted request resolved; the server is still healthy.
    assert_eq!(counter(&registry, names::SERVE_ADMITTED), 40);
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
}

#[test]
fn malformed_requests_get_400_not_a_crash() {
    let (server, registry) = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    for bad in [
        "not json",
        "{\"k\":3}",
        "{\"q\":42}",
        "{\"queries\":\"not an array\"}",
    ] {
        let resp = client::post_json(addr, "/lookup", bad, &[]).unwrap();
        assert_eq!(resp.status, 400, "payload {bad:?} got {}", resp.status);
    }
    let resp = client::post_json(addr, "/lookup/bulk", "{\"k\":1}", &[]).unwrap();
    assert_eq!(resp.status, 400);
    let resp = client::get(addr, "/nope").unwrap();
    assert_eq!(resp.status, 404);
    assert!(counter(&registry, names::SERVE_ERRORS) >= 5);
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);
}

/// Masks every `"<key>":<digits>` occurrence so span trees can be
/// compared across pool widths (only thread ordinals may differ).
fn mask_numeric_key(s: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find(&needle) {
        let (head, tail) = rest.split_at(pos + needle.len());
        out.push_str(head);
        out.push('T');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[test]
fn traces_capture_stage_trees_and_honor_client_ids() {
    let (server, registry) = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = server.addr();
    let (_, kg) = shared_model();
    let body = format!("{{\"q\":\"{}\",\"k\":3}}", kg.label(emblookup_kg::EntityId(0)));

    // A client-supplied trace id is echoed back and fetchable by id.
    let resp = client::post_json(addr, "/lookup", &body, &[("x-emblookup-trace-id", "abc123")])
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-emblookup-trace-id"), Some("0000000000abc123"));
    let fetched = client::get(addr, "/debug/traces/abc123").unwrap();
    assert_eq!(fetched.status, 200, "body: {}", fetched.body);
    for span in [
        "\"name\":\"serve.request\"",
        "\"name\":\"stage.admit\"",
        "\"name\":\"stage.decode\"",
        "\"name\":\"stage.encode\"",
        "\"name\":\"stage.search\"",
        "\"name\":\"stage.rank\"",
    ] {
        assert!(fetched.body.contains(span), "missing {span} in:\n{}", fetched.body);
    }
    assert!(fetched.body.contains("\"backend\":"), "search span lacks backend annotation");
    assert!(fetched.body.contains("\"visited\":"), "search span lacks visited annotation");

    // Bulk requests fan pool.chunk spans out of the search stage.
    let bulk = format!(
        "{{\"queries\":[\"{}\",\"{}\",\"{}\"],\"k\":2}}",
        kg.label(emblookup_kg::EntityId(1)),
        kg.label(emblookup_kg::EntityId(2)),
        kg.label(emblookup_kg::EntityId(3)),
    );
    let resp = client::post_json(addr, "/lookup/bulk", &bulk, &[("x-emblookup-trace-id", "beef")])
        .unwrap();
    assert_eq!(resp.status, 200);
    let fetched = client::get(addr, "/debug/traces/beef").unwrap();
    assert_eq!(fetched.status, 200);
    assert!(
        fetched.body.contains("\"name\":\"pool.chunk\""),
        "bulk trace lacks pool.chunk spans:\n{}",
        fetched.body
    );

    // Unknown and malformed ids are a 404, not a crash.
    assert_eq!(client::get(addr, "/debug/traces/ffffffffffffffff").unwrap().status, 404);
    assert_eq!(client::get(addr, "/debug/traces/zz").unwrap().status, 404);
    assert_eq!(counter(&registry, names::TRACE_RECORDED), 2);
    assert_eq!(counter(&registry, names::TRACE_DROPPED), 0);
}

/// A scripted storm with explicit slow threshold: one request per
/// trigger class (plus clean ones), replayed identically at both pool
/// widths.
fn storm_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        default_deadline_ms: 100,
        slow_trace_ms: 40,
        faults: Some(FaultConfig::Scripted {
            plan: vec![
                StageFaults::default(),
                StageFaults { encode_latency_ms: 60, ..StageFaults::default() },
                StageFaults { shed: true, ..StageFaults::default() },
                StageFaults { search_latency_ms: 30, ..StageFaults::default() },
                StageFaults { backend_error: true, ..StageFaults::default() },
                StageFaults { panic_in_search: true, ..StageFaults::default() },
                StageFaults { admit_latency_ms: 300, ..StageFaults::default() },
                StageFaults::default(),
            ],
            virtual_time: true,
        }),
        ..ServeConfig::default()
    }
}

fn run_storm(addr: std::net::SocketAddr) -> Vec<u16> {
    let (_, kg) = shared_model();
    let mut statuses = Vec::new();
    for i in 0..7u32 {
        let body = format!("{{\"q\":\"{}\",\"k\":3}}", kg.label(emblookup_kg::EntityId(i % 4)));
        statuses.push(client::post_json(addr, "/lookup", &body, &[]).unwrap().status);
    }
    let bulk = format!(
        "{{\"queries\":[\"{}\",\"{}\"],\"k\":2}}",
        kg.label(emblookup_kg::EntityId(0)),
        kg.label(emblookup_kg::EntityId(1)),
    );
    statuses.push(client::post_json(addr, "/lookup/bulk", &bulk, &[]).unwrap().status);
    statuses
}

#[test]
fn fault_storm_retains_every_trigger_class() {
    let (server, registry) = start(storm_config(2));
    let addr = server.addr();
    let statuses = run_storm(addr);
    assert_eq!(statuses, vec![200, 200, 429, 200, 200, 500, 504, 200]);

    let traces = client::get(addr, "/debug/traces").unwrap();
    assert_eq!(traces.status, 200);
    for trigger in ["slow", "shed", "degraded", "error", "panic"] {
        assert!(
            traces.body.contains(&format!("\"{trigger}\"")),
            "no retained trace for trigger {trigger}:\n{}",
            traces.body
        );
    }
    // Every request (shed included) left a complete tree in the ring.
    assert_eq!(counter(&registry, names::TRACE_RECORDED), 8);
    assert!(counter(&registry, names::TRACE_RETAINED) >= 5);

    // The Chrome export is valid JSON in trace_event shape.
    let chrome = client::get(addr, "/debug/traces/chrome").unwrap();
    assert_eq!(chrome.status, 200);
    let parsed = emblookup_serve::json::parse(&chrome.body).expect("chrome export must parse");
    let events = parsed.get("traceEvents").and_then(|v| v.as_arr().map(|a| a.len()));
    assert!(events.is_some_and(|n| n > 0), "no traceEvents in:\n{}", chrome.body);
    assert!(chrome.body.contains("\"ph\":\"X\""));
}

#[test]
fn debug_traces_bit_identical_across_pool_widths() {
    // The tracing extension of the §7 determinism contract: under the
    // virtual-time fault clock the whole captured span forest — ids,
    // names, durations, annotations, triggers — must match byte for
    // byte between a single-threaded and a wide pool; only the thread
    // ordinal of a span may differ.
    let (narrow, _) = start(storm_config(1));
    let (wide, _) = start(storm_config(4));
    assert_eq!(run_storm(narrow.addr()), run_storm(wide.addr()));

    let a = client::get(narrow.addr(), "/debug/traces").unwrap();
    let b = client::get(wide.addr(), "/debug/traces").unwrap();
    assert_eq!(a.status, 200);
    assert_eq!(b.status, 200);
    let mask = |s: &str| mask_numeric_key(s, "thread");
    assert_eq!(mask(&a.body), mask(&b.body), "span forests diverged across widths");

    let a = client::get(narrow.addr(), "/debug/traces/chrome").unwrap();
    let b = client::get(wide.addr(), "/debug/traces/chrome").unwrap();
    let mask = |s: &str| mask_numeric_key(s, "tid");
    assert_eq!(mask(&a.body), mask(&b.body), "chrome exports diverged across widths");
}

#[test]
fn latency_exemplar_resolves_to_a_fetchable_trace() {
    let (server, _registry) = start(storm_config(2));
    let addr = server.addr();
    run_storm(addr);

    let metrics = client::get(addr, "/metrics").unwrap();
    let exemplar_line = metrics
        .body
        .lines()
        .find(|l| l.starts_with("emblookup_serve_latency_seconds") && l.contains("trace_id="))
        .unwrap_or_else(|| panic!("no exemplar on latency series:\n{}", metrics.body));
    let id = exemplar_line
        .split("trace_id=\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("exemplar carries a trace id");
    let fetched = client::get(addr, &format!("/debug/traces/{id}")).unwrap();
    assert_eq!(fetched.status, 200, "exemplar trace {id} not fetchable");
    assert!(fetched.body.contains(&format!("\"trace_id\":\"{id}\"")));
}

#[test]
fn deadline_header_overrides_and_is_clamped() {
    let (server, _registry) = start(ServeConfig {
        workers: 1,
        default_deadline_ms: 250,
        max_deadline_ms: 1000,
        faults: Some(FaultConfig::Scripted {
            plan: vec![StageFaults {
                admit_latency_ms: 5000,
                ..StageFaults::default()
            }],
            virtual_time: true,
        }),
        ..ServeConfig::default()
    });
    // Client asks for far more than the server allows; the clamp keeps
    // the injected 5s of latency fatal.
    let resp = client::post_json(
        server.addr(),
        "/lookup",
        "{\"q\":\"x\"}",
        &[("x-emblookup-deadline-ms", "600000")],
    )
    .unwrap();
    assert_eq!(resp.status, 504);
    assert!(resp.body.contains("\"budget_ms\":1000"), "body: {}", resp.body);
}
