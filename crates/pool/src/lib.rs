//! # emblookup-pool
//!
//! A persistent work-stealing compute pool built on std primitives only —
//! the shared parallel substrate behind bulk embedding, batched ANN
//! search, k-means assignment and minibatch training.
//!
//! Before this crate, every batched call site spawned fresh OS threads
//! through `std::thread::scope`, paying thread start-up per call. The
//! pool keeps its workers alive for the process lifetime (FAISS-style)
//! and hands out work through per-worker deques plus a global injector:
//!
//! * a submitting worker pushes chunks onto **its own deque** and pops
//!   them LIFO (cache-warm); idle workers **steal FIFO** from the other
//!   end or from the injector;
//! * the **caller participates**: while waiting for its job it executes
//!   pending tasks instead of blocking, which makes nested
//!   [`Pool::parallel_for`] calls deadlock-free even on a single worker;
//! * task closures borrow from the caller's stack. This is safe because
//!   the submitting call does not return until every chunk of its job
//!   has completed (the job handle counts outstanding chunks).
//!
//! Sizing is resolved once per process by [`default_threads`]
//! (`EMBLOOKUP_THREADS` override, else `available_parallelism() - 1`,
//! min 1) and shared through the lazily-initialized [`Pool::global`].
//! Tests that need explicit widths construct their own
//! [`Pool::with_threads`].
//!
//! Panics inside tasks are contained per L001: [`Pool::try_parallel_for`]
//! surfaces them as a [`TaskPanic`] error; the panicking variants rethrow
//! the message as a panic on the calling thread, so a poisoned job never
//! takes a worker down.
//!
//! For network-facing serving, [`Pool::with_threads_bounded`] builds a
//! pool in **bounded-injector mode**: [`Pool::try_submit`] enqueues
//! detached (fire-and-forget) tasks but refuses with [`QueueFull`] once
//! [`BoundedQueue::cap`] tasks are already waiting, so a server sheds
//! load with `429` instead of queueing unboundedly.

#![warn(missing_docs)]

use emblookup_obs::names;
use emblookup_obs::TraceSpan;
use emblookup_obs::{Counter, Gauge};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Locks a mutex, ignoring poison: pool state stays consistent because
/// every critical section is a plain field update and task panics are
/// already contained by `catch_unwind` before completion bookkeeping.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // lint: allow(L002) the pool's bounded critical sections are its documented design (DESIGN.md: work-stealing pool); every other lock in the workspace must justify itself
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A task raised a panic; carries the payload's message when extractable.
#[derive(Debug, Clone)]
pub struct TaskPanic {
    /// Human-readable panic message (`"task panicked"` when the payload
    /// was not a string).
    pub message: String,
}

impl TaskPanic {
    fn from_payload(payload: &(dyn Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            // lint: allow(L002) panic error path: a worker task already panicked, the copy is for the report
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            // lint: allow(L002) panic error path: a worker task already panicked, the copy is for the report
            "task panicked".to_owned()
        };
        TaskPanic { message }
    }

    fn resume(self) -> ! {
        // lint: allow(L002) panic resume path: re-throws a captured worker panic
        panic::resume_unwind(Box::new(self.message))
    }
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// One outstanding `parallel_for` (or `join`) invocation: a lifetime- and
/// type-erased chunk runner plus completion bookkeeping. The raw pointer
/// stays valid because the submitting call blocks (work-helping) until
/// `pending` reaches zero, and only then lets the pointee drop.
struct JobCore {
    data: *const (),
    call: unsafe fn(*const (), usize, usize),
    // lint: atomic(refcount) chunks outstanding; the zero observer frees `data`
    pending: AtomicUsize,
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `data` points at a `Sync` closure owned by the submitting
// frame, which outlives every task of the job (see struct docs).
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

/// Monomorphized trampoline re-typing `data` back to the concrete
/// closure; pairing it with `data` in [`job_for`] is what keeps the
/// erasure sound (no dyn fat pointers involved).
unsafe fn call_chunk<F: Fn(usize, usize) + Sync>(data: *const (), lo: usize, hi: usize) {
    unsafe { (*(data as *const F))(lo, hi) }
}

/// Erases `runner` into a [`JobCore`] expecting `pending` chunks.
fn job_for<F: Fn(usize, usize) + Sync>(runner: &F, pending: usize) -> Arc<JobCore> {
    Arc::new(JobCore {
        data: runner as *const F as *const (),
        call: call_chunk::<F>,
        pending: AtomicUsize::new(pending),
        panic_payload: Mutex::new(None),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    })
}

/// Capacity of the bounded-injector backpressure mode: at most `cap`
/// detached tasks (submitted through [`Pool::try_submit`]) may wait in
/// the injector at once. Chunked jobs (`parallel_for` family) are not
/// bounded — their callers help-execute and thus self-limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedQueue {
    /// Maximum queued (not yet running) detached tasks.
    pub cap: usize,
}

/// A detached submission was rejected because the bounded injector is at
/// capacity — the caller should shed load (HTTP 429) or retry later.
#[derive(Debug, Clone)]
pub struct QueueFull {
    /// Configured injector capacity.
    pub cap: usize,
    /// Detached tasks queued at the time of rejection.
    pub depth: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool injector full: {} queued / cap {}", self.depth, self.cap)
    }
}

impl std::error::Error for QueueFull {}

/// A unit of executable work: either one chunk of a `parallel_for`-style
/// job, or a detached fire-and-forget closure from [`Pool::try_submit`].
enum Task {
    /// A half-open index range of one chunked job.
    Chunk { job: Arc<JobCore>, lo: usize, hi: usize },
    /// An owned closure with no completion handle; panics are contained
    /// and dropped so the worker survives.
    Detached(Box<dyn FnOnce() + Send + 'static>),
}

struct Shared {
    /// One deque per worker; owners pop LIFO, thieves steal FIFO.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Overflow queue for submissions from non-worker threads.
    injector: Mutex<VecDeque<Task>>,
    /// Tasks currently sitting in any queue (not yet picked up).
    // lint: atomic(refcount) gates the worker sleep/wake handshake
    queued: AtomicUsize,
    /// Detached tasks currently waiting in the injector (the quantity the
    /// bounded mode caps).
    // lint: atomic(refcount) gates the bounded-injector admission wait
    detached_queued: AtomicUsize,
    /// `usize::MAX` when unbounded.
    injector_cap: usize,
    sleep: Mutex<()>,
    wake: Condvar,
    // lint: atomic(flag) one-way shutdown publication to workers
    shutdown: AtomicBool,
    tasks_total: Arc<Counter>,
    steals: Arc<Counter>,
    queue_depth: Arc<Gauge>,
}

impl Shared {
    fn note_enqueued(&self, added: usize) {
        let now = self.queued.fetch_add(added, Ordering::AcqRel) + added;
        self.queue_depth.set(now as f64);
    }

    fn note_dequeued(&self) {
        let prev = self.queued.fetch_sub(1, Ordering::AcqRel);
        self.queue_depth.set(prev.saturating_sub(1) as f64);
    }

    /// Pops a task: own deque back (LIFO) first when called from worker
    /// `me`, then the injector, then the other deques' front (steal).
    fn find_task(&self, me: Option<usize>) -> Option<Task> {
        if let Some(i) = me {
            if let Some(t) = lock(&self.deques[i]).pop_back() {
                self.note_dequeued();
                return Some(t);
            }
        }
        if let Some(t) = lock(&self.injector).pop_front() {
            if matches!(t, Task::Detached(_)) {
                self.detached_queued.fetch_sub(1, Ordering::AcqRel);
            }
            self.note_dequeued();
            return Some(t);
        }
        let n = self.deques.len();
        let start = me.map(|i| i + 1).unwrap_or(0);
        for off in 0..n {
            let j = (start + off) % n;
            if Some(j) == me {
                continue;
            }
            if let Some(t) = lock(&self.deques[j]).pop_front() {
                self.note_dequeued();
                self.steals.inc();
                return Some(t);
            }
        }
        None
    }

    /// Runs one task under `catch_unwind`. Chunk panics record the first
    /// payload on their job and signal completion of the last chunk;
    /// detached panics are contained and dropped — the submitting side
    /// (e.g. the serving layer) is responsible for converting its own
    /// panics into error responses before they reach the pool boundary.
    fn run_task(&self, task: Task) {
        self.tasks_total.inc();
        match task {
            Task::Chunk { job, lo, hi } => {
                let result = panic::catch_unwind(AssertUnwindSafe(|| unsafe {
                    (job.call)(job.data, lo, hi)
                }));
                if let Err(payload) = result {
                    let mut slot = lock(&job.panic_payload);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
                if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let mut done = lock(&job.done);
                    *done = true;
                    job.done_cv.notify_all();
                }
            }
            Task::Detached(f) => {
                let _ = panic::catch_unwind(AssertUnwindSafe(f));
            }
        }
    }

    fn push_tasks(&self, tasks: Vec<Task>, me: Option<usize>) {
        let n = tasks.len();
        match me {
            Some(i) => lock(&self.deques[i]).extend(tasks),
            None => lock(&self.injector).extend(tasks),
        }
        self.note_enqueued(n);
        // taking the sleep lock orders this notify after any in-progress
        // queue check inside the workers' park sequence
        let _g = lock(&self.sleep);
        self.wake.notify_all();
    }
}

thread_local! {
    /// `(Shared address, worker index)` of the pool this thread works for.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&shared) as usize, me))));
    loop {
        if let Some(task) = shared.find_task(Some(me)) {
            shared.run_task(task);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let guard = lock(&shared.sleep);
        if shared.queued.load(Ordering::Acquire) == 0 && !shared.shutdown.load(Ordering::Acquire) {
            // timed wait as a lost-wakeup backstop; producers notify under
            // the same lock, so this normally wakes promptly on new work
            let _ = shared
                .wake
                .wait_timeout(guard, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Persistent work-stealing pool; see the crate docs for the design.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Builds a pool with `threads` total parallelism **including the
    /// submitting thread**: `threads - 1` workers are spawned, and the
    /// caller of [`Pool::parallel_for`] works alongside them.
    /// `with_threads(1)` spawns no workers and executes everything inline
    /// on the caller — the deterministic serial configuration.
    pub fn with_threads(threads: usize) -> Self {
        Self::build(threads.max(1) - 1, usize::MAX)
    }

    /// Builds a pool in **bounded-injector mode** for serving workloads:
    /// `workers` dedicated worker threads (min 1 — detached submissions
    /// have no help-waiting caller, so every unit of parallelism must be
    /// a real worker) and an injector that admits at most `queue.cap`
    /// waiting detached tasks. [`Pool::try_submit`] sheds beyond the cap.
    pub fn with_threads_bounded(workers: usize, queue: BoundedQueue) -> Self {
        Self::build(workers.max(1), queue.cap)
    }

    fn build(workers: usize, injector_cap: usize) -> Self {
        let reg = emblookup_obs::global();
        let shared = Arc::new(Shared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            queued: AtomicUsize::new(0),
            detached_queued: AtomicUsize::new(0),
            injector_cap,
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks_total: reg.counter(names::POOL_TASKS),
            steals: reg.counter(names::POOL_STEALS),
            queue_depth: reg.gauge(names::POOL_QUEUE_DEPTH),
        });
        let handles = (0..workers)
            .filter_map(|i| {
                let shared = Arc::clone(&shared);
                // a failed spawn only narrows parallelism: the missing
                // worker's deque is still drained through steals
                std::thread::Builder::new()
                    .name(format!("emblookup-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .ok()
            })
            .collect();
        Pool { shared, workers: handles }
    }

    /// The process-wide pool, created on first use with
    /// [`default_threads`] parallelism.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::with_threads(default_threads()))
    }

    /// Total parallelism of this pool (workers + the submitting thread).
    pub fn threads(&self) -> usize {
        self.shared.deques.len() + 1
    }

    /// Detached tasks currently waiting in the injector — the serving
    /// layer mirrors this into its `serve.queue.depth` gauge.
    pub fn detached_depth(&self) -> usize {
        self.shared.detached_queued.load(Ordering::Acquire)
    }

    /// Configured bounded-injector capacity, `None` when unbounded.
    pub fn injector_cap(&self) -> Option<usize> {
        (self.shared.injector_cap != usize::MAX).then_some(self.shared.injector_cap)
    }

    /// Submits a detached fire-and-forget task, refusing with [`QueueFull`]
    /// when the bounded injector already holds `cap` waiting tasks — the
    /// admission-control primitive of the serving layer: reject work while
    /// it is still cheap instead of queueing unboundedly.
    ///
    /// The capacity check and the push happen under the injector lock, so
    /// the cap is exact. Tasks already *executing* on a worker do not
    /// count against the cap — the bound is on waiting work. A panic
    /// inside `f` is contained by the worker and dropped.
    ///
    /// On a pool built with no workers (`with_threads(1)`) the task runs
    /// inline on the calling thread — the degenerate serial mode; real
    /// serving pools come from [`Pool::with_threads_bounded`], which
    /// always spawns at least one worker.
    pub fn try_submit<F>(&self, f: F) -> Result<(), QueueFull>
    where
        F: FnOnce() + Send + 'static,
    {
        if self.shared.deques.is_empty() {
            self.shared.tasks_total.inc();
            let _ = panic::catch_unwind(AssertUnwindSafe(f));
            return Ok(());
        }
        {
            let mut inj = lock(&self.shared.injector);
            let depth = self.shared.detached_queued.load(Ordering::Acquire);
            if depth >= self.shared.injector_cap {
                return Err(QueueFull { cap: self.shared.injector_cap, depth });
            }
            self.shared.detached_queued.fetch_add(1, Ordering::AcqRel);
            inj.push_back(Task::Detached(Box::new(f)));
        }
        self.shared.note_enqueued(1);
        let _g = lock(&self.shared.sleep);
        self.shared.wake.notify_all();
        Ok(())
    }

    /// Worker index when the current thread belongs to this pool.
    fn current_worker(&self) -> Option<usize> {
        let key = Arc::as_ptr(&self.shared) as usize;
        WORKER.with(|w| match w.get() {
            Some((pool, idx)) if pool == key => Some(idx),
            _ => None,
        })
    }

    /// Runs `f(i)` for every `i in 0..n`, splitting the range into chunks
    /// of at least `grain` indices executed across the pool. Returns a
    /// [`TaskPanic`] error if any invocation panicked (every chunk still
    /// runs to completion or unwinds before this returns).
    pub fn try_parallel_for<F>(&self, n: usize, grain: usize, f: F) -> Result<(), TaskPanic>
    where
        F: Fn(usize) + Sync,
    {
        let runner = |lo: usize, hi: usize| {
            for i in lo..hi {
                f(i);
            }
        };
        self.run_chunked(n, grain, &runner)
    }

    /// Like [`Pool::try_parallel_for`], but rethrows a task panic on the
    /// calling thread.
    pub fn parallel_for<F>(&self, n: usize, grain: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if let Err(e) = self.try_parallel_for(n, grain, f) {
            e.resume();
        }
    }

    /// Maps `f` over `0..n` into a `Vec` in index order, computing the
    /// entries across the pool. Chunking follows `grain` as in
    /// [`Pool::parallel_for`]. Task panics are rethrown on the caller.
    pub fn parallel_map<U, F>(&self, n: usize, grain: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        match self.try_parallel_map(n, grain, f) {
            Ok(v) => v,
            Err(e) => e.resume(),
        }
    }

    /// Fallible variant of [`Pool::parallel_map`].
    pub fn try_parallel_map<U, F>(&self, n: usize, grain: usize, f: F) -> Result<Vec<U>, TaskPanic>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        self.try_parallel_map_with(n, grain, || (), |(), i| f(i))
    }

    /// Fans `f` out over `0..n` (grain 1, one task per index) with
    /// **per-index panic containment**: unlike [`Pool::try_parallel_map`],
    /// where one panicking index fails the whole job, each index's
    /// outcome is reported independently as `Ok(value)` or
    /// `Err(TaskPanic)` in index order. This is the scatter-gather
    /// primitive for sharded serving, where one misbehaving shard must
    /// cost only its own slot of the response, never its siblings'.
    pub fn scatter<U, F>(&self, n: usize, f: F) -> Vec<Result<U, TaskPanic>>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        match self.try_parallel_map(n, 1, |i| {
            panic::catch_unwind(AssertUnwindSafe(|| f(i)))
                .map_err(|payload| TaskPanic::from_payload(payload.as_ref()))
        }) {
            Ok(v) => v,
            // Unreachable in practice: every index's panic is already
            // contained above, so the outer job cannot fail.
            Err(e) => e.resume(),
        }
    }

    /// Like [`Pool::parallel_map`] with per-chunk scratch state: `init`
    /// builds one `S` per executed chunk and `f(&mut scratch, i)` reuses
    /// it across that chunk's indices — the pattern for amortizing a
    /// work buffer (e.g. an ADC distance table) over a block of queries
    /// without allocating per element. Task panics are rethrown.
    pub fn parallel_map_with<S, U, I, F>(&self, n: usize, grain: usize, init: I, f: F) -> Vec<U>
    where
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> U + Sync,
    {
        match self.try_parallel_map_with(n, grain, init, f) {
            Ok(v) => v,
            Err(e) => e.resume(),
        }
    }

    /// Fallible variant of [`Pool::parallel_map_with`].
    pub fn try_parallel_map_with<S, U, I, F>(
        &self,
        n: usize,
        grain: usize,
        init: I,
        f: F,
    ) -> Result<Vec<U>, TaskPanic>
    where
        U: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> U + Sync,
    {
        struct SlotPtr<U>(*mut Option<U>);
        unsafe impl<U: Send> Sync for SlotPtr<U> {}
        unsafe impl<U: Send> Send for SlotPtr<U> {}
        impl<U> SlotPtr<U> {
            /// # Safety
            /// Each index must be written at most once while the backing
            /// buffer is alive and no other reference observes slot `i`.
            unsafe fn write(&self, i: usize, v: U) {
                unsafe { *self.0.add(i) = Some(v) }
            }
        }

        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let slots = SlotPtr(out.as_mut_ptr());
        let runner = |lo: usize, hi: usize| {
            let mut scratch = init();
            for i in lo..hi {
                let v = f(&mut scratch, i);
                // SAFETY: chunks partition 0..n, so each index is visited
                // exactly once and writes land in disjoint slots of a
                // buffer that outlives the call.
                unsafe { slots.write(i, v) };
            }
        };
        self.run_chunked(n, grain, &runner)?;
        let collected: Vec<U> = out.into_iter().flatten().collect();
        debug_assert_eq!(collected.len(), n, "parallel_map lost a slot");
        Ok(collected)
    }

    /// Like [`Pool::try_parallel_map_traced`], but rethrows a task
    /// panic on the calling thread.
    pub fn parallel_map_traced<U, F>(
        &self,
        n: usize,
        grain: usize,
        parent: &TraceSpan,
        chunk_name: &'static str,
        f: F,
    ) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        match self.try_parallel_map_traced(n, grain, parent, chunk_name, f) {
            Ok(v) => v,
            Err(e) => e.resume(),
        }
    }

    /// Traced [`Pool::try_parallel_map`]: maps `f` over `0..n` with one
    /// `pool.chunk` child span per chunk under `parent`, annotated with
    /// the chunk's `lo`/`hi` range and stamped with the worker thread
    /// that ran it.
    ///
    /// Unlike the untraced paths, chunking here is derived from `n` and
    /// `grain` **only** — never from the worker count — so the span
    /// tree a request produces has an identical shape at every pool
    /// width (only the `thread` ordinal each chunk records may differ).
    /// All chunk spans are created sequentially on the calling thread
    /// before execution begins, which pins their span ids.
    pub fn try_parallel_map_traced<U, F>(
        &self,
        n: usize,
        grain: usize,
        parent: &TraceSpan,
        chunk_name: &'static str,
        f: F,
    ) -> Result<Vec<U>, TaskPanic>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        struct SlotPtr<U>(*mut Option<U>);
        unsafe impl<U: Send> Sync for SlotPtr<U> {}
        unsafe impl<U: Send> Send for SlotPtr<U> {}
        impl<U> SlotPtr<U> {
            /// # Safety
            /// Each index must be written at most once while the backing
            /// buffer is alive and no other reference observes slot `i`.
            unsafe fn write(&self, i: usize, v: U) {
                unsafe { *self.0.add(i) = Some(v) }
            }
        }

        if n == 0 {
            return Ok(Vec::new());
        }
        let grain = grain.max(1);
        let chunks = n.div_ceil(grain);
        let chunk = n.div_ceil(chunks);
        let ranges: Vec<(usize, usize)> = (0..chunks)
            .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
            .filter(|&(lo, hi)| lo < hi)
            .collect();
        let spans: Vec<TraceSpan> = ranges
            .iter()
            .map(|&(lo, hi)| {
                let span = parent.child_deferred(chunk_name);
                span.annotate("lo", lo as u64);
                span.annotate("hi", hi as u64);
                span
            })
            .collect();

        let mut out: Vec<Option<U>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let slots = SlotPtr(out.as_mut_ptr());
        // The outer run covers *chunk indices*; its own width-dependent
        // re-chunking only groups chunk spans per task and never changes
        // how many `pool.chunk` spans exist.
        let runner = |clo: usize, chi: usize| {
            for ci in clo..chi {
                let (lo, hi) = ranges[ci];
                spans[ci].begin();
                for i in lo..hi {
                    let v = f(i);
                    // SAFETY: chunk ranges partition 0..n, so each index
                    // is visited exactly once and writes land in disjoint
                    // slots of a buffer that outlives the call.
                    unsafe { slots.write(i, v) };
                }
                spans[ci].finish();
            }
        };
        self.run_chunked(ranges.len(), 1, &runner)?;
        let collected: Vec<U> = out.into_iter().flatten().collect();
        debug_assert_eq!(collected.len(), n, "parallel_map_traced lost a slot");
        Ok(collected)
    }

    /// Runs two closures, potentially in parallel: `b` is offered to the
    /// pool while the caller runs `a`, then the caller helps until `b`
    /// finishes. Panics from either side are rethrown once both settled.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        if self.shared.deques.is_empty() {
            return (a(), b());
        }
        let cell: Mutex<(Option<B>, Option<RB>)> = Mutex::new((Some(b), None));
        let runner = |_lo: usize, _hi: usize| {
            let mut g = lock(&cell);
            if let Some(bf) = g.0.take() {
                let rb = bf();
                g.1 = Some(rb);
            }
        };
        let job = job_for(&runner, 1);
        let me = self.current_worker();
        self.shared
            .push_tasks(vec![Task::Chunk { job: Arc::clone(&job), lo: 0, hi: 1 }], me);
        // run `a` on the caller; contain its panic so we never unwind
        // while `b` may still borrow `runner`/`cell` from this frame
        let ra = panic::catch_unwind(AssertUnwindSafe(a));
        self.help_until_done(&job);
        let b_panic = lock(&job.panic_payload).take();
        match ra {
            Err(payload) => panic::resume_unwind(payload),
            Ok(ra) => {
                if let Some(payload) = b_panic {
                    panic::resume_unwind(payload);
                }
                let rb = lock(&cell).1.take();
                match rb {
                    Some(rb) => (ra, rb),
                    // unreachable: no recorded panic implies `b` stored
                    // its result; keep a structured fallback regardless
                    None => TaskPanic { message: "join: task result missing".to_owned() }.resume(),
                }
            }
        }
    }

    /// Splits `0..n` into chunks and executes `runner(lo, hi)` for each
    /// across the pool, helping from the calling thread until done.
    fn run_chunked<F>(&self, n: usize, grain: usize, runner: &F) -> Result<(), TaskPanic>
    where
        F: Fn(usize, usize) + Sync,
    {
        if n == 0 {
            return Ok(());
        }
        let grain = grain.max(1);
        let workers = self.shared.deques.len();
        // enough chunks for balance, not so many that queue traffic wins
        let max_chunks = (workers + 1) * 4;
        let chunks = n.div_ceil(grain).min(max_chunks).max(1);
        if workers == 0 || chunks == 1 {
            // inline execution still counts as one task so `pool.tasks`
            // reflects throughput on single-core hosts
            self.shared.tasks_total.inc();
            let result = panic::catch_unwind(AssertUnwindSafe(|| runner(0, n)));
            return result.map_err(|p| TaskPanic::from_payload(p.as_ref()));
        }
        let chunk = n.div_ceil(chunks);
        let ranges: Vec<(usize, usize)> = (0..chunks)
            .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
            .filter(|&(lo, hi)| lo < hi)
            .collect();
        let job = job_for(runner, ranges.len());
        let me = self.current_worker();
        let tasks = ranges
            .into_iter()
            .map(|(lo, hi)| Task::Chunk { job: Arc::clone(&job), lo, hi })
            .collect();
        self.shared.push_tasks(tasks, me);
        self.help_until_done(&job);
        let panicked = lock(&job.panic_payload).take();
        match panicked {
            Some(payload) => Err(TaskPanic::from_payload(payload.as_ref())),
            None => Ok(()),
        }
    }

    /// Executes pending tasks (any job) until `job` completes; parks on
    /// the job's condvar only when no runnable task exists.
    fn help_until_done(&self, job: &Arc<JobCore>) {
        let me = self.current_worker();
        loop {
            if *lock(&job.done) {
                return;
            }
            if let Some(task) = self.shared.find_task(me) {
                self.shared.run_task(task);
                continue;
            }
            let guard = lock(&job.done);
            if *guard {
                return;
            }
            // short timeout: a nested job may enqueue helpable tasks
            // without signalling this job's condvar
            let _ = job
                .done_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = lock(&self.shared.sleep);
            self.shared.wake.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Process-wide parallelism: the `EMBLOOKUP_THREADS` environment variable
/// when set to a positive integer, else `available_parallelism() - 1`
/// (at least 1). Resolved once and cached — every sizing decision in the
/// workspace routes through this single point.
pub fn default_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Some(n) = std::env::var("EMBLOOKUP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
        {
            return n;
        }
        std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1).max(1))
            .unwrap_or(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_index_once() {
        for threads in [1, 2, 4] {
            let pool = Pool::with_threads(threads);
            let n = 1000;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for(n, 7, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        for threads in [1, 4] {
            let pool = Pool::with_threads(threads);
            let out = pool.parallel_map(257, 16, |i| i * i);
            assert_eq!(out.len(), 257);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
        }
    }

    #[test]
    fn scatter_preserves_order_and_contains_panics_per_index() {
        for threads in [1, 4] {
            let pool = Pool::with_threads(threads);
            let out = pool.scatter(7, |i| {
                if i == 3 {
                    panic!("index 3 misbehaved");
                }
                i * 10
            });
            assert_eq!(out.len(), 7);
            for (i, res) in out.iter().enumerate() {
                if i == 3 {
                    let err = res.as_ref().expect_err("index 3 must fail alone");
                    assert!(err.message.contains("index 3 misbehaved"));
                } else {
                    assert_eq!(*res.as_ref().expect("healthy index"), i * 10);
                }
            }
        }
    }

    #[test]
    fn scatter_all_panicking_still_returns_every_slot() {
        let pool = Pool::with_threads(2);
        let out = pool.scatter(4, |_i| -> usize {
            panic!("every shard down");
        });
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|r| r.is_err()));
    }

    #[test]
    fn parallel_map_with_reuses_scratch_per_chunk() {
        for threads in [1, 4] {
            let pool = Pool::with_threads(threads);
            let inits = AtomicUsize::new(0);
            let out = pool.parallel_map_with(
                100,
                10,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::with_capacity(16)
                },
                |scratch, i| {
                    scratch.push(i);
                    i * 2
                },
            );
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
            let built = inits.load(Ordering::Relaxed);
            assert!((1..=10).contains(&built), "scratch built {built} times");
        }
    }

    #[test]
    fn zero_len_and_single_index_work() {
        let pool = Pool::with_threads(4);
        pool.parallel_for(0, 8, |_| unreachable!("no indices"));
        let out = pool.parallel_map(1, 8, |i| i + 41);
        assert_eq!(out, vec![41]);
    }

    #[test]
    fn nested_parallel_for_completes() {
        let pool = Pool::with_threads(4);
        let total = AtomicU64::new(0);
        pool.parallel_for(8, 1, |i| {
            // nested submission from both worker and caller threads
            let local: u64 = pool
                .parallel_map(10, 2, |j| (i * 10 + j) as u64)
                .into_iter()
                .sum();
            total.fetch_add(local, Ordering::Relaxed);
        });
        let expect: u64 = (0..80u64).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn try_parallel_for_surfaces_panic_as_error() {
        for threads in [1, 4] {
            let pool = Pool::with_threads(threads);
            let err = pool
                .try_parallel_for(64, 4, |i| {
                    if i == 13 {
                        panic!("boom at 13");
                    }
                })
                .expect_err("panic must surface");
            assert!(err.message.contains("boom at 13"), "got: {}", err.message);
            // the pool must stay usable afterwards
            let out = pool.parallel_map(8, 2, |i| i);
            assert_eq!(out.len(), 8);
        }
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn parallel_for_rethrows_panic() {
        let pool = Pool::with_threads(4);
        pool.parallel_for(16, 1, |i| {
            if i == 5 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn join_runs_both_sides() {
        for threads in [1, 4] {
            let pool = Pool::with_threads(threads);
            let (a, b) = pool.join(|| 2 + 2, || "ok".len());
            assert_eq!((a, b), (4, 2));
        }
    }

    #[test]
    fn join_from_inside_parallel_for() {
        let pool = Pool::with_threads(3);
        let acc = AtomicU64::new(0);
        pool.parallel_for(6, 1, |i| {
            let (a, b) = pool.join(|| i as u64, || (i * i) as u64);
            acc.fetch_add(a + b, Ordering::Relaxed);
        });
        let expect: u64 = (0..6u64).map(|i| i + i * i).sum();
        assert_eq!(acc.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let serial = Pool::with_threads(1);
        let wide = Pool::with_threads(4);
        let f = |i: usize| (i as f32).sqrt() * 1.5 + (i % 7) as f32;
        let a = serial.parallel_map(500, 8, f);
        let b = wide.parallel_map(500, 8, f);
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn traced_map_has_width_independent_span_shape() {
        use emblookup_obs::{AnnoValue, Trace, TraceClock};
        use std::sync::atomic::AtomicU64 as Ns;

        let shape = |threads: usize| {
            let pool = Pool::with_threads(threads);
            let ns = Arc::new(Ns::new(0));
            let trace = Trace::start(threads as u64, TraceClock::virtual_shared(ns));
            let root = trace.root(names::SPAN_LOOKUP_REQUEST);
            let out = pool
                .try_parallel_map_traced(100, 13, &root, names::SPAN_POOL_CHUNK, |i| i * 2)
                .unwrap();
            root.finish();
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            let data = trace.snapshot();
            data.spans
                .iter()
                .map(|s| (s.id, s.parent, s.name, s.start_ns, s.end_ns, s.annotations.clone()))
                .collect::<Vec<_>>()
        };
        let narrow = shape(1);
        let wide = shape(4);
        assert_eq!(narrow, wide, "span tree must not depend on pool width");
        // 100 / 13 → 8 chunks under the root
        assert_eq!(narrow.len(), 9);
        assert_eq!(narrow[1].5[0], ("lo", AnnoValue::U64(0)));
        assert_eq!(narrow[8].5[1], ("hi", AnnoValue::U64(100)));
    }

    #[test]
    fn traced_map_surfaces_panics_and_keeps_tree() {
        use emblookup_obs::{Trace, TraceClock};
        let pool = Pool::with_threads(2);
        let trace = Trace::start(1, TraceClock::real());
        let root = trace.root(names::SPAN_LOOKUP_REQUEST);
        let err = pool
            .try_parallel_map_traced(32, 4, &root, names::SPAN_POOL_CHUNK, |i| {
                if i == 17 {
                    panic!("chunk boom");
                }
                i
            })
            .expect_err("panic must surface");
        assert!(err.message.contains("chunk boom"));
        root.finish();
        let data = trace.snapshot();
        assert_eq!(data.spans.len(), 9, "all chunk spans exist even after a panic");
    }

    #[test]
    fn try_submit_runs_detached_tasks() {
        let pool = Pool::with_threads_bounded(2, BoundedQueue { cap: 64 });
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let hits = Arc::clone(&hits);
            pool.try_submit(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            })
            .expect("under cap");
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while hits.load(Ordering::SeqCst) < 20 {
            assert!(std::time::Instant::now() < deadline, "detached tasks not drained");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn try_submit_sheds_at_capacity() {
        // one worker, blocked; cap 2 → two queued tasks admitted, third shed
        let pool = Pool::with_threads_bounded(1, BoundedQueue { cap: 2 });
        let release = Arc::new(AtomicBool::new(false));
        let gate = Arc::clone(&release);
        pool.try_submit(move || {
            while !gate.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
            }
        })
        .expect("blocker admitted");
        // give the worker a moment to pick the blocker up
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.detached_depth() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.try_submit(|| {}).expect("first queued");
        pool.try_submit(|| {}).expect("second queued");
        let err = pool.try_submit(|| {}).expect_err("cap reached");
        assert_eq!(err.cap, 2);
        assert!(err.depth >= 2, "depth {}", err.depth);
        release.store(true, Ordering::Release);
    }

    #[test]
    fn detached_panic_leaves_pool_serving() {
        let pool = Pool::with_threads_bounded(1, BoundedQueue { cap: 8 });
        pool.try_submit(|| panic!("injected detached panic")).expect("admitted");
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        pool.try_submit(move || flag.store(true, Ordering::Release))
            .expect("admitted after panic");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !done.load(Ordering::Acquire) {
            assert!(std::time::Instant::now() < deadline, "worker died after panic");
            std::thread::sleep(Duration::from_millis(1));
        }
        // chunked jobs still work on the same pool
        let out = pool.parallel_map(8, 2, |i| i);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn zero_worker_pool_runs_submissions_inline() {
        let pool = Pool::with_threads(1);
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        pool.try_submit(move || flag.store(true, Ordering::Release))
            .expect("inline execution");
        assert!(ran.load(Ordering::Acquire));
        assert_eq!(pool.injector_cap(), None);
    }

    #[test]
    fn bounded_pool_reports_cap() {
        let pool = Pool::with_threads_bounded(2, BoundedQueue { cap: 7 });
        assert_eq!(pool.injector_cap(), Some(7));
        assert_eq!(pool.detached_depth(), 0);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = Pool::with_threads(4);
        pool.parallel_for(100, 5, |_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let p1 = Pool::global();
        let p2 = Pool::global();
        assert!(std::ptr::eq(p1, p2));
        assert!(p1.threads() >= 1);
        let out = p1.parallel_map(32, 4, |i| i as u32);
        assert_eq!(out.len(), 32);
    }
}
