//! # emblookup-tensor
//!
//! Minimal deep-learning substrate for the EmbLookup reproduction: dense
//! `f32` tensors, a tape-based reverse-mode autograd, the layers EmbLookup's
//! models need (linear, conv1d, LSTM, transformer block, layer norm), Adam /
//! SGD optimizers and the triplet loss of the paper.
//!
//! The crate intentionally implements only the op set the paper's models
//! exercise — it replaces PyTorch for this reproduction, not in general.
//!
//! ## Example
//!
//! ```
//! use emblookup_tensor::{Graph, Tensor, loss};
//!
//! let mut g = Graph::new();
//! let anchor = g.leaf(Tensor::vector(&[0.0, 0.0]));
//! let positive = g.leaf(Tensor::vector(&[0.2, 0.0]));
//! let negative = g.leaf(Tensor::vector(&[0.9, 0.4]));
//! let l = loss::triplet(&mut g, anchor, positive, negative, 0.5);
//! g.backward(l);
//! assert!(g.grad(anchor).is_some());
//! ```

#![warn(missing_docs)]

pub mod conv;
pub mod graph;
pub mod loss;
pub mod nn;
pub mod optim;
pub mod params;
pub mod tensor;

pub use graph::{Graph, Var};
pub use params::{Bindings, ParamId, ParamStore};
pub use tensor::Tensor;

// Property tests need the external `proptest` crate, unavailable in
// offline builds; enable with `--features proptest-tests` when vendored.
#[cfg(all(test, feature = "proptest-tests"))]
mod proptests {
    use crate::graph::Graph;
    use crate::tensor::Tensor;
    use proptest::prelude::*;

    fn tensor_1d(len: usize) -> impl Strategy<Value = Tensor> {
        proptest::collection::vec(-5.0f32..5.0, len).prop_map(move |v| Tensor::vector(&v))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn add_is_commutative(a in tensor_1d(6), b in tensor_1d(6)) {
            let mut g = Graph::new();
            let va = g.leaf(a);
            let vb = g.leaf(b);
            let ab = g.add(va, vb);
            let ba = g.add(vb, va);
            prop_assert_eq!(g.value(ab).data(), g.value(ba).data());
        }

        #[test]
        fn relu_is_idempotent(a in tensor_1d(8)) {
            let mut g = Graph::new();
            let v = g.leaf(a);
            let r1 = g.relu(v);
            let r2 = g.relu(r1);
            prop_assert_eq!(g.value(r1).data(), g.value(r2).data());
        }

        #[test]
        fn softmax_rows_are_distributions(data in proptest::collection::vec(-8.0f32..8.0, 12)) {
            let mut g = Graph::new();
            let v = g.leaf(Tensor::from_vec(&[3, 4], data));
            let sm = g.softmax_rows(v);
            for r in 0..3 {
                let row = g.value(sm).row(r);
                prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
                let s: f32 = row.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-4);
            }
        }

        #[test]
        fn l2_normalize_gives_unit_norm(a in tensor_1d(5)) {
            prop_assume!(a.norm() > 1e-3);
            let mut g = Graph::new();
            let v = g.leaf(a);
            let n = g.l2_normalize(v);
            prop_assert!((g.value(n).norm() - 1.0).abs() < 1e-4);
        }

        #[test]
        fn matmul_distributes_over_add(
            a in proptest::collection::vec(-2.0f32..2.0, 6),
            b in proptest::collection::vec(-2.0f32..2.0, 6),
            w in proptest::collection::vec(-2.0f32..2.0, 6),
        ) {
            let mut g = Graph::new();
            let va = g.leaf(Tensor::from_vec(&[2, 3], a));
            let vb = g.leaf(Tensor::from_vec(&[2, 3], b));
            let vw = g.leaf(Tensor::from_vec(&[3, 2], w));
            let sum = g.add(va, vb);
            let lhs = g.matmul(sum, vw);
            let ma = g.matmul(va, vw);
            let mb = g.matmul(vb, vw);
            let rhs = g.add(ma, mb);
            for (x, y) in g.value(lhs).data().iter().zip(g.value(rhs).data()) {
                prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
            }
        }

        #[test]
        fn triplet_loss_is_nonnegative(
            a in tensor_1d(4), p in tensor_1d(4), n in tensor_1d(4), margin in 0.0f32..2.0,
        ) {
            let mut g = Graph::new();
            let va = g.leaf(a);
            let vp = g.leaf(p);
            let vn = g.leaf(n);
            let l = crate::loss::triplet(&mut g, va, vp, vn, margin);
            prop_assert!(g.value(l).item() >= 0.0);
        }

        #[test]
        fn backward_never_produces_nan(
            data in proptest::collection::vec(-3.0f32..3.0, 10),
        ) {
            let mut g = Graph::new();
            let x = g.leaf(Tensor::vector(&data));
            let s = g.sigmoid(x);
            let t = g.tanh(s);
            let sq = g.mul(t, t);
            let loss = g.mean_all(sq);
            g.backward(loss);
            prop_assert!(g.grad(x).unwrap().all_finite());
        }
    }
}
