//! Optimizers operating on a [`ParamStore`] after a backward pass.

use crate::graph::Graph;
use crate::params::{Bindings, ParamId, ParamStore};
use crate::tensor::Tensor;

/// Gradients for a set of parameters, indexed by [`ParamId`] — the bridge
/// between micro-batch backward passes (each on its own graph, possibly
/// computed on the compute pool) and a single optimizer update. Merging
/// buffers in a fixed order makes the combined gradient independent of
/// which thread produced which micro-batch.
#[derive(Default)]
pub struct GradBuffer {
    grads: Vec<Option<Tensor>>,
}

impl GradBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        GradBuffer { grads: Vec::new() }
    }

    /// Collects every bound parameter's gradient from a finished graph.
    pub fn from_graph(graph: &Graph, bindings: &Bindings) -> Self {
        let mut buf = Self::new();
        for (id, var) in bindings.iter() {
            if let Some(g) = graph.grad(var) {
                buf.accumulate(id, g);
            }
        }
        buf
    }

    /// Adds `g` into the slot for `id` (element-wise), creating it on
    /// first touch.
    pub fn accumulate(&mut self, id: ParamId, g: &Tensor) {
        if self.grads.len() <= id.0 {
            self.grads.resize_with(id.0 + 1, || None);
        }
        match &mut self.grads[id.0] {
            Some(t) => t.axpy(1.0, g),
            slot => *slot = Some(g.clone()),
        }
    }

    /// Adds every gradient of `other` into `self`. Slots combine in
    /// ascending [`ParamId`] order, so folding micro-batch buffers in a
    /// fixed sequence yields a deterministic result.
    pub fn merge(&mut self, other: &GradBuffer) {
        for (i, g) in other.grads.iter().enumerate() {
            if let Some(g) = g {
                self.accumulate(ParamId(i), g);
            }
        }
    }

    /// Scales every stored gradient by `s` (e.g. `1 / batch_len` to turn
    /// summed micro-batch losses into a mean).
    pub fn scale(&mut self, s: f32) {
        for g in self.grads.iter_mut().flatten() {
            g.scale_mut(s);
        }
    }

    /// The gradient stored for `id`, if any.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.grads.get(id.0).and_then(Option::as_ref)
    }

    /// Iterates stored `(id, gradient)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.grads
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|g| (ParamId(i), g)))
    }

    /// True when no gradient is stored.
    pub fn is_empty(&self) -> bool {
        self.grads.iter().all(Option::is_none)
    }
}

/// A gradient-descent style optimizer.
pub trait Optimizer {
    /// Applies one update step from the gradients accumulated in `graph`
    /// for every parameter recorded in `bindings`.
    fn step(&mut self, store: &mut ParamStore, graph: &Graph, bindings: &Bindings) {
        let grads = GradBuffer::from_graph(graph, bindings);
        self.step_grads(store, &grads);
    }

    /// Applies one update step from pre-collected gradients — the entry
    /// point for micro-batch training, where several graphs' gradients
    /// are merged into one [`GradBuffer`] before a single update.
    fn step_grads(&mut self, store: &mut ParamStore, grads: &GradBuffer);
}

/// Plain stochastic gradient descent with optional gradient clipping.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// When set, every gradient tensor is clipped to this L2 norm.
    pub clip_norm: Option<f32>,
}

impl Sgd {
    /// SGD with the given learning rate and no clipping.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, clip_norm: None }
    }
}

impl Optimizer for Sgd {
    fn step_grads(&mut self, store: &mut ParamStore, grads: &GradBuffer) {
        for (id, grad) in grads.iter() {
            let mut g = grad.clone();
            maybe_clip(&mut g, self.clip_norm);
            store.get_mut(id).axpy(-self.lr, &g);
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction, matching the paper's
/// training setup ("we use the Adam optimizer").
pub struct Adam {
    /// Learning rate (paper-scale default `1e-3`).
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub eps: f32,
    /// When set, every gradient tensor is clipped to this L2 norm.
    pub clip_norm: Option<f32>,
    step: u64,
    moments: Vec<Option<(Tensor, Tensor)>>,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: Some(5.0),
            step: 0,
            moments: Vec::new(),
        }
    }

    fn moment_slot(&mut self, id: ParamId, shape: &[usize]) -> &mut (Tensor, Tensor) {
        if self.moments.len() <= id.0 {
            self.moments.resize_with(id.0 + 1, || None);
        }
        self.moments[id.0]
            .get_or_insert_with(|| (Tensor::zeros(shape), Tensor::zeros(shape)))
    }
}

impl Optimizer for Adam {
    fn step_grads(&mut self, store: &mut ParamStore, grads: &GradBuffer) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (id, grad) in grads.iter() {
            let mut g = grad.clone();
            maybe_clip(&mut g, self.clip_norm);
            let (beta1, beta2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
            let (m, v) = self.moment_slot(id, g.shape());
            let param = store.get_mut(id);
            let pd = param.data_mut();
            for (i, p) in pd.iter_mut().enumerate() {
                let gi = g.data()[i];
                let mi = beta1 * m.data()[i] + (1.0 - beta1) * gi;
                let vi = beta2 * v.data()[i] + (1.0 - beta2) * gi * gi;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                *p -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }
}

fn maybe_clip(g: &mut Tensor, clip: Option<f32>) {
    if let Some(max_norm) = clip {
        let n = g.norm();
        if n > max_norm && n > 0.0 {
            g.scale_mut(max_norm / n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Minimizes f(x) = sum((x - target)^2) and checks convergence.
    fn converges(optimizer: &mut dyn Optimizer, iters: usize) -> f32 {
        let mut store = ParamStore::new();
        let x = store.register("x", Tensor::vector(&[5.0, -3.0, 0.5]));
        let target = Tensor::vector(&[1.0, 2.0, 3.0]);
        for _ in 0..iters {
            let mut graph = Graph::new();
            let mut bindings = Bindings::new();
            let xv = bindings.bind(&mut graph, &store, x);
            let t = graph.leaf(target.clone());
            let d = graph.sub(xv, t);
            let sq = graph.mul(d, d);
            let loss = graph.sum_all(sq);
            graph.backward(loss);
            optimizer.step(&mut store, &graph, &bindings);
        }
        store.get(x).sub(&target).norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!(converges(&mut opt, 100) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        assert!(converges(&mut opt, 300) < 1e-2);
    }

    #[test]
    fn clipping_bounds_update() {
        let mut store = ParamStore::new();
        let x = store.register("x", Tensor::vector(&[1000.0]));
        let mut graph = Graph::new();
        let mut bindings = Bindings::new();
        let xv = bindings.bind(&mut graph, &store, x);
        let sq = graph.mul(xv, xv);
        let loss = graph.sum_all(sq);
        graph.backward(loss);
        let before = store.get(x).data()[0];
        let mut opt = Sgd { lr: 1.0, clip_norm: Some(1.0) };
        opt.step(&mut store, &graph, &bindings);
        let after = store.get(x).data()[0];
        // gradient is 2000 but clipped to norm 1 -> step of exactly lr * 1
        assert!((before - after - 1.0).abs() < 1e-4);
    }

    #[test]
    fn step_grads_from_merged_microbatches_matches_single_graph() {
        // two half-batches summed then scaled must update exactly like
        // one graph whose loss already averaged the same terms
        let targets = [Tensor::vector(&[2.0, -1.0]), Tensor::vector(&[4.0, 3.0])];
        let run = |micro: bool| -> Vec<f32> {
            let mut store = ParamStore::new();
            let x = store.register("x", Tensor::vector(&[0.0, 0.0]));
            let mut opt = Sgd::new(0.5);
            if micro {
                let mut total = GradBuffer::new();
                for target in &targets {
                    let mut graph = Graph::new();
                    let mut bindings = Bindings::new();
                    let xv = bindings.bind(&mut graph, &store, x);
                    let t = graph.leaf(target.clone());
                    let d = graph.sub(xv, t);
                    let sq = graph.mul(d, d);
                    let loss = graph.sum_all(sq);
                    graph.backward(loss);
                    total.merge(&GradBuffer::from_graph(&graph, &bindings));
                }
                total.scale(1.0 / targets.len() as f32);
                opt.step_grads(&mut store, &total);
            } else {
                let mut graph = Graph::new();
                let mut bindings = Bindings::new();
                let xv = bindings.bind(&mut graph, &store, x);
                let mut halves = Vec::new();
                for target in &targets {
                    let t = graph.leaf(target.clone());
                    let d = graph.sub(xv, t);
                    let sq = graph.mul(d, d);
                    halves.push(graph.sum_all(sq));
                }
                let sum = graph.add(halves[0], halves[1]);
                let half = graph.leaf(Tensor::scalar(0.5));
                let loss = graph.mul(sum, half);
                graph.backward(loss);
                opt.step(&mut store, &graph, &bindings);
            }
            store.get(x).data().to_vec()
        };
        let a = run(true);
        let b = run(false);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "micro {a:?} vs single {b:?}");
        }
    }

    #[test]
    fn adam_handles_missing_grad() {
        let mut store = ParamStore::new();
        let used = store.register("used", Tensor::vector(&[1.0]));
        let unused = store.register("unused", Tensor::vector(&[7.0]));
        let mut graph = Graph::new();
        let mut bindings = Bindings::new();
        let uv = bindings.bind(&mut graph, &store, used);
        let _nv = bindings.bind(&mut graph, &store, unused);
        let sq = graph.mul(uv, uv);
        let loss = graph.sum_all(sq);
        graph.backward(loss);
        let mut opt = Adam::new(0.1);
        opt.step(&mut store, &graph, &bindings);
        // untouched parameter keeps its value
        assert_eq!(store.get(unused).data(), &[7.0]);
        assert_ne!(store.get(used).data(), &[1.0]);
    }
}
