//! Neural-network layers built on the autograd [`Graph`].
//!
//! Each layer registers its weights in a [`ParamStore`] at construction and
//! exposes two paths:
//!
//! * `forward(...)` — records operations on a training [`Graph`], binding
//!   its parameters through [`Bindings`] so the optimizer can update them;
//! * `infer(...)` (where provided) — a graph-free forward pass for the hot
//!   bulk-embedding path used when indexing millions of entities.

use crate::graph::{Graph, Var};
use crate::params::{Bindings, ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;

/// Fully-connected layer `y = x W + b` with Xavier-uniform initialization.
pub struct Linear {
    w: ParamId,
    b: ParamId,
    /// Input feature count.
    pub in_dim: usize,
    /// Output feature count.
    pub out_dim: usize,
}

impl Linear {
    /// Registers a `[in_dim, out_dim]` weight and `[out_dim]` bias.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
    ) -> Self {
        let bound = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let w = store.register(
            format!("{name}.w"),
            Tensor::uniform(&[in_dim, out_dim], -bound, bound, rng),
        );
        let b = store.register(format!("{name}.b"), Tensor::zeros(&[out_dim]));
        Linear { w, b, in_dim, out_dim }
    }

    /// Applies the layer to `[n, in_dim]` (or `[in_dim]`, treated as one row).
    pub fn forward(
        &self,
        g: &mut Graph,
        bindings: &mut Bindings,
        store: &ParamStore,
        x: Var,
    ) -> Var {
        let x2 = if g.value(x).rank() == 1 {
            g.reshape(x, &[1, self.in_dim])
        } else {
            x
        };
        let w = bindings.bind(g, store, self.w);
        let b = bindings.bind(g, store, self.b);
        let y = g.matmul(x2, w);
        g.add_bias(y, b)
    }

    /// Graph-free forward for inference on `[n, in_dim]` or `[in_dim]`.
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let w = store.get(self.w);
        let b = store.get(self.b);
        let rows = if x.rank() == 1 { 1 } else { x.rows() };
        let x2 = x.clone().reshape(&[rows, self.in_dim]);
        let mut y = x2.matmul(w);
        for r in 0..rows {
            for j in 0..self.out_dim {
                y.data_mut()[r * self.out_dim + j] += b.data()[j];
            }
        }
        if x.rank() == 1 {
            y.reshape(&[self.out_dim])
        } else {
            y
        }
    }

    /// The weight parameter id (exposed for serialization tests).
    pub fn weight_id(&self) -> ParamId {
        self.w
    }
}

/// 1-D convolution layer over `[C_in, L]` inputs with "same" padding.
pub struct Conv1dLayer {
    w: ParamId,
    b: ParamId,
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count (the paper's "kernels", default 8).
    pub out_channels: usize,
    /// Kernel width (the paper uses 3).
    pub kernel: usize,
    /// Zero padding applied to both ends of the time axis.
    pub pad: usize,
}

impl Conv1dLayer {
    /// Registers a `[out, in, k]` kernel and `[out]` bias, with padding
    /// chosen to preserve the input length for odd kernels ("same").
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = (in_channels * kernel) as f32;
        let bound = (3.0 / fan_in).sqrt();
        let w = store.register(
            format!("{name}.w"),
            Tensor::uniform(&[out_channels, in_channels, kernel], -bound, bound, rng),
        );
        let b = store.register(format!("{name}.b"), Tensor::zeros(&[out_channels]));
        Conv1dLayer {
            w,
            b,
            in_channels,
            out_channels,
            kernel,
            pad: kernel / 2,
        }
    }

    /// Applies the convolution on the graph.
    pub fn forward(
        &self,
        g: &mut Graph,
        bindings: &mut Bindings,
        store: &ParamStore,
        x: Var,
    ) -> Var {
        let w = bindings.bind(g, store, self.w);
        let b = bindings.bind(g, store, self.b);
        g.conv1d(x, w, b, self.pad)
    }

    /// Graph-free forward on a `[C_in, L]` tensor.
    pub fn infer(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        assert_eq!(
            x.shape()[0],
            self.in_channels,
            "conv infer channel mismatch: input {:?}, expected {}",
            x.shape(),
            self.in_channels
        );
        crate::conv::conv1d_forward(x, store.get(self.w), store.get(self.b), self.pad)
    }
}

/// Single LSTM cell; unrolled over time by [`Lstm`].
///
/// Gate layout inside the stacked `[4*hidden]` pre-activation vector is
/// `[input, forget, cell-candidate, output]`.
pub struct LstmCell {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    /// Input feature count.
    pub in_dim: usize,
    /// Hidden state width.
    pub hidden: usize,
}

impl LstmCell {
    /// Registers the cell's three parameter tensors.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let bound = (1.0 / hidden as f32).sqrt();
        let wx = store.register(
            format!("{name}.wx"),
            Tensor::uniform(&[in_dim, 4 * hidden], -bound, bound, rng),
        );
        let wh = store.register(
            format!("{name}.wh"),
            Tensor::uniform(&[hidden, 4 * hidden], -bound, bound, rng),
        );
        // forget-gate bias initialized to 1: standard trick for gradient flow
        let mut bias = Tensor::zeros(&[4 * hidden]);
        for j in hidden..2 * hidden {
            bias.data_mut()[j] = 1.0;
        }
        let b = store.register(format!("{name}.b"), bias);
        LstmCell { wx, wh, b, in_dim, hidden }
    }

    /// One step: consumes `x_t` `[in_dim]`, `(h, c)` `[hidden]` each;
    /// returns the next `(h, c)`.
    pub fn step(
        &self,
        g: &mut Graph,
        bindings: &mut Bindings,
        store: &ParamStore,
        x_t: Var,
        h: Var,
        c: Var,
    ) -> (Var, Var) {
        let hdim = self.hidden;
        let wx = bindings.bind(g, store, self.wx);
        let wh = bindings.bind(g, store, self.wh);
        let b = bindings.bind(g, store, self.b);

        let x_row = g.reshape(x_t, &[1, self.in_dim]);
        let h_row = g.reshape(h, &[1, hdim]);
        let xg = g.matmul(x_row, wx);
        let hg = g.matmul(h_row, wh);
        let pre = g.add(xg, hg);
        let pre = g.add_bias(pre, b);
        let pre = g.reshape(pre, &[4 * hdim]);

        let i_pre = g.slice(pre, 0, hdim);
        let f_pre = g.slice(pre, hdim, hdim);
        let c_pre = g.slice(pre, 2 * hdim, hdim);
        let o_pre = g.slice(pre, 3 * hdim, hdim);

        let i = g.sigmoid(i_pre);
        let f = g.sigmoid(f_pre);
        let chat = g.tanh(c_pre);
        let o = g.sigmoid(o_pre);

        let fc = g.mul(f, c);
        let ic = g.mul(i, chat);
        let c_next = g.add(fc, ic);
        let c_act = g.tanh(c_next);
        let h_next = g.mul(o, c_act);
        (h_next, c_next)
    }
}

/// LSTM encoder: runs [`LstmCell`] over a sequence and returns the last
/// hidden state (optionally projected).
pub struct Lstm {
    cell: LstmCell,
}

impl Lstm {
    /// Builds an LSTM with the given input/hidden dimensions.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        Lstm {
            cell: LstmCell::new(store, name, in_dim, hidden, rng),
        }
    }

    /// Hidden width of the encoder.
    pub fn hidden(&self) -> usize {
        self.cell.hidden
    }

    /// Encodes a sequence of `[in_dim]` vectors, returning the final hidden
    /// state `[hidden]`.
    ///
    /// # Panics
    /// Panics on an empty sequence.
    pub fn encode(
        &self,
        g: &mut Graph,
        bindings: &mut Bindings,
        store: &ParamStore,
        inputs: &[Var],
    ) -> Var {
        assert!(!inputs.is_empty(), "LSTM over empty sequence");
        let mut h = g.leaf(Tensor::zeros(&[self.cell.hidden]));
        let mut c = g.leaf(Tensor::zeros(&[self.cell.hidden]));
        for &x_t in inputs {
            let (h2, c2) = self.cell.step(g, bindings, store, x_t, h, c);
            h = h2;
            c = c2;
        }
        h
    }
}

/// Layer normalization with learned gain/offset.
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
}

impl LayerNorm {
    /// Registers `[dim]` gamma (ones) and beta (zeros).
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.register(format!("{name}.gamma"), Tensor::ones(&[dim]));
        let beta = store.register(format!("{name}.beta"), Tensor::zeros(&[dim]));
        LayerNorm { gamma, beta }
    }

    /// Normalizes over the last axis of `[n, dim]` (or `[dim]`).
    pub fn forward(
        &self,
        g: &mut Graph,
        bindings: &mut Bindings,
        store: &ParamStore,
        x: Var,
    ) -> Var {
        let gamma = bindings.bind(g, store, self.gamma);
        let beta = bindings.bind(g, store, self.beta);
        g.layer_norm(x, gamma, beta)
    }
}

/// Single-head self-attention + feed-forward transformer block, used by the
/// "BERT-mini" embedding baseline of Table VII.
pub struct TransformerBlock {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    ff1: Linear,
    ff2: Linear,
    ln1: LayerNorm,
    ln2: LayerNorm,
    /// Model width.
    pub dim: usize,
}

impl TransformerBlock {
    /// Builds a block of width `dim` with a `2*dim` feed-forward inner layer.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        TransformerBlock {
            wq: Linear::new(store, &format!("{name}.wq"), dim, dim, rng),
            wk: Linear::new(store, &format!("{name}.wk"), dim, dim, rng),
            wv: Linear::new(store, &format!("{name}.wv"), dim, dim, rng),
            wo: Linear::new(store, &format!("{name}.wo"), dim, dim, rng),
            ff1: Linear::new(store, &format!("{name}.ff1"), dim, 2 * dim, rng),
            ff2: Linear::new(store, &format!("{name}.ff2"), 2 * dim, dim, rng),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim),
            dim,
        }
    }

    /// Applies the block to token matrix `x` of shape `[T, dim]`.
    pub fn forward(
        &self,
        g: &mut Graph,
        bindings: &mut Bindings,
        store: &ParamStore,
        x: Var,
    ) -> Var {
        let q = self.wq.forward(g, bindings, store, x);
        let k = self.wk.forward(g, bindings, store, x);
        let v = self.wv.forward(g, bindings, store, x);
        let kt = g.transpose(k);
        let scores = g.matmul(q, kt);
        let scaled = g.scale(scores, 1.0 / (self.dim as f32).sqrt());
        let attn = g.softmax_rows(scaled);
        let ctx = g.matmul(attn, v);
        let proj = self.wo.forward(g, bindings, store, ctx);
        let res1 = g.add(x, proj);
        let norm1 = self.ln1.forward(g, bindings, store, res1);

        let ff = self.ff1.forward(g, bindings, store, norm1);
        let ff = g.relu(ff);
        let ff = self.ff2.forward(g, bindings, store, ff);
        let res2 = g.add(norm1, ff);
        self.ln2.forward(g, bindings, store, res2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_matches_infer() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "l", 4, 3, &mut rng);
        let x = Tensor::uniform(&[2, 4], -1.0, 1.0, &mut rng);

        let mut g = Graph::new();
        let mut b = Bindings::new();
        let xv = g.leaf(x.clone());
        let yv = layer.forward(&mut g, &mut b, &store, xv);
        let graph_out = g.value(yv).clone();
        let infer_out = layer.infer(&store, &x);
        assert_eq!(graph_out.shape(), infer_out.shape());
        for (a, b) in graph_out.data().iter().zip(infer_out.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn linear_vector_input_gives_vector_output() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "l", 4, 3, &mut rng);
        let x = Tensor::uniform(&[4], -1.0, 1.0, &mut rng);
        let y = layer.infer(&store, &x);
        assert_eq!(y.shape(), &[3]);
    }

    #[test]
    fn conv_forward_matches_infer() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let layer = Conv1dLayer::new(&mut store, "c", 5, 8, 3, &mut rng);
        let x = Tensor::uniform(&[5, 12], -1.0, 1.0, &mut rng);

        let mut g = Graph::new();
        let mut b = Bindings::new();
        let xv = g.leaf(x.clone());
        let yv = layer.forward(&mut g, &mut b, &store, xv);
        let graph_out = g.value(yv).clone();
        let infer_out = layer.infer(&store, &x);
        assert_eq!(graph_out.shape(), &[8, 12]); // same padding
        for (a, b) in graph_out.data().iter().zip(infer_out.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn lstm_encode_produces_hidden_vector() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "lstm", 6, 10, &mut rng);
        let mut g = Graph::new();
        let mut b = Bindings::new();
        let seq: Vec<Var> = (0..5)
            .map(|_| g.leaf(Tensor::uniform(&[6], -1.0, 1.0, &mut rng)))
            .collect();
        let h = lstm.encode(&mut g, &mut b, &store, &seq);
        assert_eq!(g.value(h).shape(), &[10]);
        assert!(g.value(h).all_finite());
    }

    #[test]
    fn lstm_trains_to_separate_two_sequences() {
        // tiny sanity check: LSTM learns to output different scores for two
        // fixed sequences under a margin-style objective
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, "lstm", 3, 8, &mut rng);
        let head_rng = &mut rng;
        let head = Linear::new(&mut store, "head", 8, 1, head_rng);
        let seq_a: Vec<Tensor> = (0..4)
            .map(|i| Tensor::vector(&[i as f32, 1.0, 0.0]))
            .collect();
        let seq_b: Vec<Tensor> = (0..4)
            .map(|i| Tensor::vector(&[-(i as f32), 0.0, 1.0]))
            .collect();
        let mut opt = Adam::new(0.05);
        let mut last_loss = f32::INFINITY;
        for _ in 0..40 {
            let mut g = Graph::new();
            let mut b = Bindings::new();
            let va: Vec<Var> = seq_a.iter().map(|t| g.leaf(t.clone())).collect();
            let vb: Vec<Var> = seq_b.iter().map(|t| g.leaf(t.clone())).collect();
            let ha = lstm.encode(&mut g, &mut b, &store, &va);
            let hb = lstm.encode(&mut g, &mut b, &store, &vb);
            let sa = head.forward(&mut g, &mut b, &store, ha);
            let sb = head.forward(&mut g, &mut b, &store, hb);
            // want sa - sb to exceed 1
            let diff = g.sub(sb, sa);
            let shifted = g.add_scalar(diff, 1.0);
            let loss_t = g.relu(shifted);
            let loss = g.sum_all(loss_t);
            g.backward(loss);
            last_loss = g.value(loss).item();
            opt.step(&mut store, &g, &b);
        }
        assert!(last_loss < 0.1, "LSTM failed to learn margin, loss {last_loss}");
    }

    #[test]
    fn transformer_block_preserves_shape_and_is_finite() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, "t", 8, &mut rng);
        let mut g = Graph::new();
        let mut b = Bindings::new();
        let x = g.leaf(Tensor::uniform(&[5, 8], -1.0, 1.0, &mut rng));
        let y = block.forward(&mut g, &mut b, &store, x);
        assert_eq!(g.value(y).shape(), &[5, 8]);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn transformer_block_backward_reaches_all_params() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let block = TransformerBlock::new(&mut store, "t", 6, &mut rng);
        let mut g = Graph::new();
        let mut b = Bindings::new();
        let x = g.leaf(Tensor::uniform(&[3, 6], -1.0, 1.0, &mut rng));
        let y = block.forward(&mut g, &mut b, &store, x);
        let sq = g.mul(y, y);
        let loss = g.sum_all(sq);
        g.backward(loss);
        for (_, var) in b.iter() {
            assert!(g.grad(var).is_some(), "a transformer parameter got no gradient");
        }
    }
}

/// Single GRU cell; unrolled over time by [`Gru`]. Gate layout inside the
/// stacked `[3*hidden]` pre-activation is `[reset, update, candidate]`.
pub struct GruCell {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    /// Input feature count.
    pub in_dim: usize,
    /// Hidden state width.
    pub hidden: usize,
}

impl GruCell {
    /// Registers the cell's parameter tensors.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        let bound = (1.0 / hidden as f32).sqrt();
        let wx = store.register(
            format!("{name}.wx"),
            Tensor::uniform(&[in_dim, 3 * hidden], -bound, bound, rng),
        );
        let wh = store.register(
            format!("{name}.wh"),
            Tensor::uniform(&[hidden, 3 * hidden], -bound, bound, rng),
        );
        let b = store.register(format!("{name}.b"), Tensor::zeros(&[3 * hidden]));
        GruCell { wx, wh, b, in_dim, hidden }
    }

    /// One step: consumes `x_t` `[in_dim]` and `h` `[hidden]`; returns the
    /// next hidden state.
    pub fn step(
        &self,
        g: &mut Graph,
        bindings: &mut Bindings,
        store: &ParamStore,
        x_t: Var,
        h: Var,
    ) -> Var {
        let hd = self.hidden;
        let wx = bindings.bind(g, store, self.wx);
        let wh = bindings.bind(g, store, self.wh);
        let b = bindings.bind(g, store, self.b);

        let x_row = g.reshape(x_t, &[1, self.in_dim]);
        let h_row = g.reshape(h, &[1, hd]);
        let xg = g.matmul(x_row, wx);
        let xg = g.add_bias(xg, b);
        let xg = g.reshape(xg, &[3 * hd]);
        let hg = g.matmul(h_row, wh);
        let hg = g.reshape(hg, &[3 * hd]);

        let xr = g.slice(xg, 0, hd);
        let xz = g.slice(xg, hd, hd);
        let xn = g.slice(xg, 2 * hd, hd);
        let hr = g.slice(hg, 0, hd);
        let hz = g.slice(hg, hd, hd);
        let hn = g.slice(hg, 2 * hd, hd);

        let r_pre = g.add(xr, hr);
        let r = g.sigmoid(r_pre);
        let z_pre = g.add(xz, hz);
        let z = g.sigmoid(z_pre);
        let gated = g.mul(r, hn);
        let n_pre = g.add(xn, gated);
        let n = g.tanh(n_pre);

        // h' = (1 - z) * n + z * h  ==  n + z * (h - n)
        let diff = g.sub(h, n);
        let scaled = g.mul(z, diff);
        g.add(n, scaled)
    }
}

/// GRU encoder: runs [`GruCell`] over a sequence, returning the final
/// hidden state. The publicly released EmbLookup code used GRUs for the
/// syntactic encoder; this layer supports that variant.
pub struct Gru {
    cell: GruCell,
}

impl Gru {
    /// Builds a GRU with the given input/hidden dimensions.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        Gru { cell: GruCell::new(store, name, in_dim, hidden, rng) }
    }

    /// Hidden width of the encoder.
    pub fn hidden(&self) -> usize {
        self.cell.hidden
    }

    /// Encodes a sequence of `[in_dim]` vectors.
    ///
    /// # Panics
    /// Panics on an empty sequence.
    pub fn encode(
        &self,
        g: &mut Graph,
        bindings: &mut Bindings,
        store: &ParamStore,
        inputs: &[Var],
    ) -> Var {
        assert!(!inputs.is_empty(), "GRU over empty sequence");
        let mut h = g.leaf(Tensor::zeros(&[self.cell.hidden]));
        for &x_t in inputs {
            h = self.cell.step(g, bindings, store, x_t, h);
        }
        h
    }
}

#[cfg(test)]
mod gru_tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gru_encode_shape_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 5, 9, &mut rng);
        let mut g = Graph::new();
        let mut b = Bindings::new();
        let seq: Vec<Var> = (0..6)
            .map(|_| g.leaf(Tensor::uniform(&[5], -1.0, 1.0, &mut rng)))
            .collect();
        let h = gru.encode(&mut g, &mut b, &store, &seq);
        assert_eq!(g.value(h).shape(), &[9]);
        assert!(g.value(h).all_finite());
    }

    #[test]
    fn gru_gradients_reach_all_params() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 3, 6, &mut rng);
        let mut g = Graph::new();
        let mut b = Bindings::new();
        let seq: Vec<Var> = (0..4)
            .map(|_| g.leaf(Tensor::uniform(&[3], -1.0, 1.0, &mut rng)))
            .collect();
        let h = gru.encode(&mut g, &mut b, &store, &seq);
        let sq = g.mul(h, h);
        let loss = g.sum_all(sq);
        g.backward(loss);
        assert_eq!(b.len(), 3); // wx, wh, b — each bound exactly once
        for (_, var) in b.iter() {
            assert!(g.grad(var).is_some(), "a GRU parameter got no gradient");
        }
    }

    #[test]
    fn gru_learns_margin_task() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, "gru", 3, 8, &mut rng);
        let head = Linear::new(&mut store, "head", 8, 1, &mut rng);
        let seq_a: Vec<Tensor> = (0..4).map(|i| Tensor::vector(&[i as f32, 1.0, 0.0])).collect();
        let seq_b: Vec<Tensor> = (0..4).map(|i| Tensor::vector(&[-(i as f32), 0.0, 1.0])).collect();
        let mut opt = Adam::new(0.05);
        let mut last = f32::INFINITY;
        for _ in 0..40 {
            let mut g = Graph::new();
            let mut b = Bindings::new();
            let va: Vec<Var> = seq_a.iter().map(|t| g.leaf(t.clone())).collect();
            let vb: Vec<Var> = seq_b.iter().map(|t| g.leaf(t.clone())).collect();
            let ha = gru.encode(&mut g, &mut b, &store, &va);
            let hb = gru.encode(&mut g, &mut b, &store, &vb);
            let sa = head.forward(&mut g, &mut b, &store, ha);
            let sb = head.forward(&mut g, &mut b, &store, hb);
            let diff = g.sub(sb, sa);
            let shifted = g.add_scalar(diff, 1.0);
            let hinge = g.relu(shifted);
            let loss = g.sum_all(hinge);
            g.backward(loss);
            last = g.value(loss).item();
            opt.step(&mut store, &g, &b);
        }
        assert!(last < 0.1, "GRU failed to learn margin, loss {last}");
    }
}
