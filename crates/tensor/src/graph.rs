//! Reverse-mode automatic differentiation on a flat tape.
//!
//! A [`Graph`] is a tape of nodes. Every operation computes its value
//! eagerly when the node is appended, and records which parent nodes it read
//! so that [`Graph::backward`] can run the tape in reverse and accumulate
//! gradients. Because nodes are appended in topological order by
//! construction, the backward pass is a single reverse sweep — no sorting.
//!
//! The op set is exactly what EmbLookup's models need (CNN encoder, LSTM
//! and attention baselines, triplet / cross-entropy losses); it is not a
//! general tensor algebra.

use crate::conv::{conv1d_backward_masked, conv1d_forward};
use crate::tensor::Tensor;

/// Handle to a node on a [`Graph`] tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Operation recorded on the tape. Parents are stored as [`Var`]s.
/// (The `AddScalar` constant is carried for `Debug` output even though the
/// backward pass never reads it — the gradient of `x + c` ignores `c`.)
#[derive(Debug, Clone)]
#[allow(dead_code)]
enum Op {
    /// Input or parameter leaf; `backward` stops here.
    Leaf,
    /// Elementwise sum of two same-shape tensors.
    Add(Var, Var),
    /// `[m,n] + [n]`: the bias row is broadcast over the rows of the matrix.
    AddBias(Var, Var),
    /// Adds a compile-time constant to every element.
    AddScalar(Var, f32),
    /// Elementwise difference.
    Sub(Var, Var),
    /// Elementwise product.
    Mul(Var, Var),
    /// Multiplies every element by a constant.
    Scale(Var, f32),
    /// Rank-2 matrix product.
    Matmul(Var, Var),
    /// Rank-2 transpose.
    Transpose(Var),
    /// Elementwise `max(x, 0)`.
    Relu(Var),
    /// Elementwise logistic sigmoid.
    Sigmoid(Var),
    /// Elementwise hyperbolic tangent.
    Tanh(Var),
    /// Row-wise softmax of a rank-2 tensor.
    SoftmaxRows(Var),
    /// 1-D convolution: input `[C_in, L]`, weight `[C_out, C_in, K]`,
    /// bias `[C_out]`, zero padding `pad` on both sides, stride 1.
    Conv1d {
        input: Var,
        weight: Var,
        bias: Var,
        pad: usize,
    },
    /// Max over the time axis of `[C, L]`, producing `[C]`.
    /// Argmax positions are cached in the node's `aux`.
    MaxPoolTime(Var),
    /// Segmented max over time: `[C, L]` split into `s` equal time chunks,
    /// producing `[C * s]` (channel-major). Argmaxes cached in `aux`.
    MaxPoolSegments(Var, usize),
    /// Concatenation of rank-1 tensors into one rank-1 tensor.
    Concat(Vec<Var>),
    /// Contiguous slice of a rank-1 tensor.
    Slice(Var, usize, usize),
    /// Shape re-labeling; gradients pass straight through.
    Reshape(Var),
    /// Sum of all elements, producing a scalar.
    SumAll(Var),
    /// Mean of all elements, producing a scalar.
    MeanAll(Var),
    /// Gathers rows of a `[V, D]` matrix, producing `[n, D]`.
    /// Row indices are cached in the node's `aux`.
    Rows(Var),
    /// Stacks rank-1 tensors of equal length into a `[n, D]` matrix.
    StackRows(Vec<Var>),
    /// Mean over the rows of `[n, D]`, producing `[D]`.
    MeanRows(Var),
    /// Layer normalization over the last axis of `[n, D]` with learned
    /// `gamma`/`beta` of shape `[D]`.
    LayerNorm { x: Var, gamma: Var, beta: Var },
    /// Mean softmax cross-entropy of `[n, C]` logits against the class
    /// indices cached in `aux`; the softmax itself is cached in `cache`.
    CrossEntropyRows(Var),
    /// L2 normalization of a rank-1 vector; the input norm is cached.
    L2Normalize(Var),
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
    /// Integer side-channel (argmax positions, gather indices, targets).
    aux: Vec<u32>,
    /// Float side-channel (cached softmax, layernorm statistics).
    cache: Vec<f32>,
    /// Constant leaf: the backward pass never materializes a gradient for
    /// it, and whole gradient branches that reach only constants are
    /// skipped (see [`Graph::constant`]).
    no_grad: bool,
}

/// Visits every parent [`Var`] an op reads, in recorded order.
fn for_each_input(op: &Op, mut f: impl FnMut(Var)) {
    match op {
        Op::Leaf => {}
        Op::Add(a, b) | Op::AddBias(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::Matmul(a, b) => {
            f(*a);
            f(*b);
        }
        Op::AddScalar(a, _)
        | Op::Scale(a, _)
        | Op::Transpose(a)
        | Op::Relu(a)
        | Op::Sigmoid(a)
        | Op::Tanh(a)
        | Op::SoftmaxRows(a)
        | Op::MaxPoolTime(a)
        | Op::MaxPoolSegments(a, _)
        | Op::Slice(a, _, _)
        | Op::Reshape(a)
        | Op::SumAll(a)
        | Op::MeanAll(a)
        | Op::Rows(a)
        | Op::MeanRows(a)
        | Op::CrossEntropyRows(a)
        | Op::L2Normalize(a) => f(*a),
        Op::Conv1d { input, weight, bias, .. } => {
            f(*input);
            f(*weight);
            f(*bias);
        }
        Op::Concat(parts) | Op::StackRows(parts) => {
            for p in parts {
                f(*p);
            }
        }
        Op::LayerNorm { x, gamma, beta } => {
            f(*x);
            f(*gamma);
            f(*beta);
        }
    }
}

/// Epsilon used inside layer normalization.
const LN_EPS: f32 = 1e-5;

/// A tape of eagerly-evaluated operations supporting reverse-mode autodiff.
///
/// Typical use: create a graph per minibatch, push leaves for inputs and
/// parameters, build the loss, call [`Graph::backward`] on it, then read
/// parameter gradients with [`Graph::grad`].
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Per-node "gradient reaches a non-constant leaf" marks, rebuilt by
    /// every [`Graph::backward`] call; `accum` consults it to skip dead
    /// gradient branches.
    needs: Vec<bool>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::new(), needs: Vec::new() }
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.push_full(value, op, Vec::new(), Vec::new())
    }

    fn push_full(&mut self, value: Tensor, op: Op, aux: Vec<u32>, cache: Vec<f32>) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            aux,
            cache,
            no_grad: false,
        });
        Var(self.nodes.len() - 1)
    }

    /// Adds an input/parameter leaf holding `value`.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Adds a constant input leaf: like [`Graph::leaf`], but declares that
    /// no gradient is wanted. The backward pass prunes every gradient
    /// branch that reaches only constants — for EmbLookup's model this
    /// skips the first conv layer's input gradient (a dense
    /// `[|A|, L]` tensor flowing into the one-hot characters) and the
    /// frozen fastText vector, the two biggest dead computations of a
    /// training step. [`Graph::grad`] returns `None` for constants.
    pub fn constant(&mut self, value: Tensor) -> Var {
        let v = self.push(value, Op::Leaf);
        self.nodes[v.0].no_grad = true;
        v
    }

    /// Borrows the value computed at `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Borrows the gradient accumulated at `v`, if backward reached it.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(value, Op::Add(a, b))
    }

    /// Broadcast add of a `[n]` bias over the rows of a `[m,n]` matrix
    /// (or an `[n]` vector, treated as a single row).
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let xt = &self.nodes[x.0].value;
        let bt = &self.nodes[bias.0].value;
        let n = bt.len();
        assert_eq!(
            xt.cols(),
            n,
            "add_bias: matrix cols {} != bias len {}",
            xt.cols(),
            n
        );
        let mut out = xt.clone();
        for row in 0..xt.rows() {
            for j in 0..n {
                out.data_mut()[row * n + j] += bt.data()[j];
            }
        }
        self.push(out, Op::AddBias(x, bias))
    }

    /// Adds the constant `c` to every element.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let value = self.nodes[a.0].value.map(|x| x + c);
        self.push(value, Op::AddScalar(a, c))
    }

    /// Elementwise difference. Panics on shape mismatch.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        self.push(value, Op::Sub(a, b))
    }

    /// Elementwise product. Panics on shape mismatch. `mul(x, x)` squares.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.mul(&self.nodes[b.0].value);
        self.push(value, Op::Mul(a, b))
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        value.scale_mut(s);
        self.push(value, Op::Scale(a, s))
    }

    /// Rank-2 matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(value, Op::Matmul(a, b))
    }

    /// Rank-2 transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.transpose();
        self.push(value, Op::Transpose(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(value, Op::Sigmoid(a))
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|x| x.tanh());
        self.push(value, Op::Tanh(a))
    }

    /// Row-wise softmax of a rank-2 tensor (rank-1 treated as one row).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let (rows, cols) = (x.rows(), x.cols());
        let mut out = x.clone();
        for r in 0..rows {
            let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
            softmax_in_place(row);
        }
        self.push(out, Op::SoftmaxRows(a))
    }

    /// 1-D convolution with zero padding and stride 1.
    ///
    /// * `input` — `[C_in, L]`
    /// * `weight` — `[C_out, C_in, K]`
    /// * `bias` — `[C_out]`
    ///
    /// Output is `[C_out, L + 2*pad - K + 1]`.
    ///
    /// # Panics
    /// Panics on any dimension mismatch or if the kernel does not fit.
    pub fn conv1d(&mut self, input: Var, weight: Var, bias: Var, pad: usize) -> Var {
        let x = &self.nodes[input.0].value;
        let w = &self.nodes[weight.0].value;
        let b = &self.nodes[bias.0].value;
        let out = conv1d_forward(x, w, b, pad);
        self.push(out, Op::Conv1d { input, weight, bias, pad })
    }

    /// Max over time: `[C, L] -> [C]`, caching argmax positions.
    pub fn max_pool_time(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        assert_eq!(x.rank(), 2, "max_pool_time needs [C, L], got {:?}", x.shape());
        let (c, l) = (x.shape()[0], x.shape()[1]);
        assert!(l > 0, "max_pool_time over empty time axis");
        let mut out = Tensor::zeros(&[c]);
        let mut arg = Vec::with_capacity(c);
        for ch in 0..c {
            let row = &x.data()[ch * l..(ch + 1) * l];
            let (mut best_i, mut best_v) = (0usize, row[0]);
            for (i, &v) in row.iter().enumerate().skip(1) {
                if v > best_v {
                    best_v = v;
                    best_i = i;
                }
            }
            out.data_mut()[ch] = best_v;
            arg.push(best_i as u32);
        }
        self.push_full(out, Op::MaxPoolTime(a), arg, Vec::new())
    }

    /// Segmented max pooling: splits the time axis of `[C, L]` into
    /// `segments` equal chunks (the last takes the remainder) and takes the
    /// max per (channel, chunk), producing `[C * segments]` channel-major.
    ///
    /// # Panics
    /// Panics unless the input is rank-2 with `L >= segments >= 1`.
    pub fn max_pool_segments(&mut self, a: Var, segments: usize) -> Var {
        let x = &self.nodes[a.0].value;
        assert_eq!(x.rank(), 2, "max_pool_segments needs [C, L], got {:?}", x.shape());
        assert!(segments >= 1, "segments must be >= 1");
        let (c, l) = (x.shape()[0], x.shape()[1]);
        assert!(l >= segments, "time axis {l} shorter than {segments} segments");
        let chunk = l / segments;
        let mut out = Tensor::zeros(&[c * segments]);
        let mut arg = Vec::with_capacity(c * segments);
        for ch in 0..c {
            let row = &x.data()[ch * l..(ch + 1) * l];
            for s in 0..segments {
                let lo = s * chunk;
                let hi = if s + 1 == segments { l } else { lo + chunk };
                let (mut best_i, mut best_v) = (lo, row[lo]);
                for (i, &v) in row.iter().enumerate().take(hi).skip(lo + 1) {
                    if v > best_v {
                        best_v = v;
                        best_i = i;
                    }
                }
                out.data_mut()[ch * segments + s] = best_v;
                arg.push(best_i as u32);
            }
        }
        self.push_full(out, Op::MaxPoolSegments(a, segments), arg, Vec::new())
    }

    /// Concatenates rank-1 tensors into one rank-1 tensor.
    pub fn concat(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let mut data = Vec::new();
        for &p in parts {
            let t = &self.nodes[p.0].value;
            data.extend_from_slice(t.data());
        }
        let n = data.len();
        self.push(Tensor::from_vec(&[n], data), Op::Concat(parts.to_vec()))
    }

    /// Takes `len` elements of a rank-1 tensor starting at `start`.
    pub fn slice(&mut self, a: Var, start: usize, len: usize) -> Var {
        let t = &self.nodes[a.0].value;
        assert!(
            start + len <= t.len(),
            "slice {}..{} out of bounds for len {}",
            start,
            start + len,
            t.len()
        );
        let data = t.data()[start..start + len].to_vec();
        self.push(Tensor::from_vec(&[len], data), Op::Slice(a, start, len))
    }

    /// Re-labels a node's value with a new shape of equal element count.
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let value = self.nodes[a.0].value.clone().reshape(shape);
        self.push(value, Op::Reshape(a))
    }

    /// Sum of all elements, producing a scalar node.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.nodes[a.0].value.sum());
        self.push(value, Op::SumAll(a))
    }

    /// Mean of all elements, producing a scalar node.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let t = &self.nodes[a.0].value;
        assert!(!t.is_empty(), "mean_all of empty tensor");
        let value = Tensor::scalar(t.sum() / t.len() as f32);
        self.push(value, Op::MeanAll(a))
    }

    /// Gathers rows of a `[V, D]` matrix into `[indices.len(), D]`.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn rows(&mut self, table: Var, indices: &[u32]) -> Var {
        let t = &self.nodes[table.0].value;
        assert_eq!(t.rank(), 2, "rows() needs a [V, D] table, got {:?}", t.shape());
        let (v, d) = (t.shape()[0], t.shape()[1]);
        let mut data = Vec::with_capacity(indices.len() * d);
        for &i in indices {
            assert!((i as usize) < v, "row index {i} out of bounds for table with {v} rows");
            data.extend_from_slice(t.row(i as usize));
        }
        self.push_full(
            Tensor::from_vec(&[indices.len(), d], data),
            Op::Rows(table),
            indices.to_vec(),
            Vec::new(),
        )
    }

    /// Stacks rank-1 tensors of equal length into a `[n, D]` matrix.
    pub fn stack_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "stack_rows of zero tensors");
        let d = self.nodes[parts[0].0].value.len();
        let mut data = Vec::with_capacity(parts.len() * d);
        for &p in parts {
            let t = &self.nodes[p.0].value;
            assert_eq!(t.len(), d, "stack_rows parts must have equal length");
            data.extend_from_slice(t.data());
        }
        self.push(
            Tensor::from_vec(&[parts.len(), d], data),
            Op::StackRows(parts.to_vec()),
        )
    }

    /// Mean over the rows of `[n, D]`, producing `[D]`.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let t = &self.nodes[a.0].value;
        assert_eq!(t.rank(), 2, "mean_rows needs rank-2, got {:?}", t.shape());
        let (n, d) = (t.shape()[0], t.shape()[1]);
        assert!(n > 0, "mean_rows of empty matrix");
        let mut out = vec![0.0f32; d];
        for r in 0..n {
            for (o, &x) in out.iter_mut().zip(t.row(r)) {
                *o += x;
            }
        }
        for o in &mut out {
            *o /= n as f32;
        }
        self.push(Tensor::from_vec(&[d], out), Op::MeanRows(a))
    }

    /// Layer normalization over the last axis of `[n, D]` (or `[D]`).
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var) -> Var {
        let t = &self.nodes[x.0].value;
        let g = &self.nodes[gamma.0].value;
        let b = &self.nodes[beta.0].value;
        let (n, d) = (t.rows(), t.cols());
        assert_eq!(g.len(), d, "layer_norm gamma len {} != D {}", g.len(), d);
        assert_eq!(b.len(), d, "layer_norm beta len {} != D {}", b.len(), d);
        let mut out = t.clone();
        // cache: per row [mean, inv_std] followed by normalized values
        let mut cache = Vec::with_capacity(n * (2 + d));
        for r in 0..n {
            let row = &mut out.data_mut()[r * d..(r + 1) * d];
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + LN_EPS).sqrt();
            cache.push(mean);
            cache.push(inv_std);
            for (j, v) in row.iter_mut().enumerate() {
                let xhat = (*v - mean) * inv_std;
                cache.push(xhat);
                *v = g.data()[j] * xhat + b.data()[j];
            }
        }
        self.push_full(out, Op::LayerNorm { x, gamma, beta }, Vec::new(), cache)
    }

    /// Mean softmax cross-entropy of `[n, C]` logits against `targets`.
    ///
    /// # Panics
    /// Panics if `targets.len()` differs from the number of logit rows or a
    /// target class is out of range.
    pub fn cross_entropy_rows(&mut self, logits: Var, targets: &[u32]) -> Var {
        let t = &self.nodes[logits.0].value;
        let (n, c) = (t.rows(), t.cols());
        assert_eq!(targets.len(), n, "targets len {} != rows {}", targets.len(), n);
        let mut cache = Vec::with_capacity(n * c);
        let mut loss = 0.0f32;
        for (r, &target) in targets.iter().enumerate() {
            let mut row = t.data()[r * c..(r + 1) * c].to_vec();
            softmax_in_place(&mut row);
            let y = target as usize;
            assert!(y < c, "target class {y} out of range {c}");
            loss -= row[y].max(1e-12).ln();
            cache.extend_from_slice(&row);
        }
        loss /= n as f32;
        self.push_full(
            Tensor::scalar(loss),
            Op::CrossEntropyRows(logits),
            targets.to_vec(),
            cache,
        )
    }

    /// Scales a rank-1 vector to unit Euclidean norm (common practice in
    /// deep metric learning; a zero vector passes through unchanged).
    pub fn l2_normalize(&mut self, a: Var) -> Var {
        let x = &self.nodes[a.0].value;
        let norm = x.norm();
        let value = if norm > 1e-12 {
            x.map(|v| v / norm)
        } else {
            x.clone()
        };
        self.push_full(value, Op::L2Normalize(a), Vec::new(), vec![norm])
    }

    /// Runs the backward pass from the scalar node `root`.
    ///
    /// Gradients accumulate: a variable used several times receives the sum
    /// of the gradients flowing through every use.
    ///
    /// # Panics
    /// Panics if `root` is not a scalar.
    pub fn backward(&mut self, root: Var) {
        assert_eq!(
            self.nodes[root.0].value.len(),
            1,
            "backward root must be scalar, got {:?}",
            self.nodes[root.0].value.shape()
        );
        for node in &mut self.nodes {
            node.grad = None;
        }
        // A node's gradient is worth computing only if some non-constant
        // leaf sits in its input subtree; the tape is topologically
        // ordered, so one ascending sweep settles every mark.
        self.needs.clear();
        self.needs.resize(self.nodes.len(), false);
        for i in 0..self.nodes.len() {
            let mut needed = match &self.nodes[i].op {
                Op::Leaf => !self.nodes[i].no_grad,
                _ => false,
            };
            if !needed {
                for_each_input(&self.nodes[i].op, |v| needed |= self.needs[v.0]);
            }
            self.needs[i] = needed;
        }
        self.nodes[root.0].grad = Some(Tensor::full(self.nodes[root.0].value.shape(), 1.0));

        for i in (0..self.nodes.len()).rev() {
            let Some(gy) = self.nodes[i].grad.clone() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    self.accum(a, &gy);
                    self.accum(b, &gy);
                }
                Op::AddBias(x, bias) => {
                    self.accum(x, &gy);
                    let n = self.nodes[bias.0].value.len();
                    let mut gb = Tensor::zeros(&[n]);
                    for r in 0..gy.rows() {
                        for j in 0..n {
                            gb.data_mut()[j] += gy.data()[r * n + j];
                        }
                    }
                    // bias may be stored as [n] even when gy is [1, n]
                    let gb = gb.reshape(self.nodes[bias.0].value.shape());
                    self.accum(bias, &gb);
                }
                Op::AddScalar(a, _) => self.accum(a, &gy),
                Op::Sub(a, b) => {
                    self.accum(a, &gy);
                    if self.needs[b.0] {
                        let neg = gy.map(|x| -x);
                        self.accum(b, &neg);
                    }
                }
                Op::Mul(a, b) => {
                    if self.needs[a.0] {
                        let ga = gy.mul(&self.nodes[b.0].value);
                        self.accum(a, &ga);
                    }
                    if self.needs[b.0] {
                        let gb = gy.mul(&self.nodes[a.0].value);
                        self.accum(b, &gb);
                    }
                }
                Op::Scale(a, s) => {
                    let mut g = gy.clone();
                    g.scale_mut(s);
                    self.accum(a, &g);
                }
                Op::Matmul(a, b) => {
                    if self.needs[a.0] {
                        let bt = self.nodes[b.0].value.transpose();
                        let ga = gy.matmul(&bt);
                        self.accum(a, &ga);
                    }
                    if self.needs[b.0] {
                        let at = self.nodes[a.0].value.transpose();
                        let gb = at.matmul(&gy);
                        self.accum(b, &gb);
                    }
                }
                Op::Transpose(a) => {
                    let g = gy.transpose();
                    self.accum(a, &g);
                }
                Op::Relu(a) => {
                    let g = gy.zip_with(&self.nodes[i].value, |g, y| if y > 0.0 { g } else { 0.0 });
                    self.accum(a, &g);
                }
                Op::Sigmoid(a) => {
                    let g = gy.zip_with(&self.nodes[i].value, |g, y| g * y * (1.0 - y));
                    self.accum(a, &g);
                }
                Op::Tanh(a) => {
                    let g = gy.zip_with(&self.nodes[i].value, |g, y| g * (1.0 - y * y));
                    self.accum(a, &g);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[i].value;
                    let (rows, cols) = (y.rows(), y.cols());
                    let mut g = Tensor::zeros(y.shape());
                    for r in 0..rows {
                        let yrow = &y.data()[r * cols..(r + 1) * cols];
                        let grow = &gy.data()[r * cols..(r + 1) * cols];
                        let dot: f32 = yrow.iter().zip(grow).map(|(&y, &g)| y * g).sum();
                        for j in 0..cols {
                            g.data_mut()[r * cols + j] = yrow[j] * (grow[j] - dot);
                        }
                    }
                    self.accum(a, &g);
                }
                Op::Conv1d { input, weight, bias, pad } => {
                    self.conv1d_backward(i, input, weight, bias, pad, &gy);
                }
                Op::MaxPoolTime(a) => {
                    let arg = self.nodes[i].aux.clone();
                    let x_shape = self.nodes[a.0].value.shape().to_vec();
                    let l = x_shape[1];
                    let mut g = Tensor::zeros(&x_shape);
                    for (ch, &pos) in arg.iter().enumerate() {
                        g.data_mut()[ch * l + pos as usize] += gy.data()[ch];
                    }
                    self.accum(a, &g);
                }
                Op::MaxPoolSegments(a, segments) => {
                    let arg = self.nodes[i].aux.clone();
                    let x_shape = self.nodes[a.0].value.shape().to_vec();
                    let l = x_shape[1];
                    let mut g = Tensor::zeros(&x_shape);
                    for (slot, &pos) in arg.iter().enumerate() {
                        let ch = slot / segments;
                        g.data_mut()[ch * l + pos as usize] += gy.data()[slot];
                    }
                    self.accum(a, &g);
                }
                Op::Concat(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let len = self.nodes[p.0].value.len();
                        if self.needs[p.0] {
                            let g = Tensor::from_vec(
                                self.nodes[p.0].value.shape(),
                                gy.data()[offset..offset + len].to_vec(),
                            );
                            self.accum(p, &g);
                        }
                        offset += len;
                    }
                }
                Op::Reshape(a) => {
                    let g = gy.clone().reshape(self.nodes[a.0].value.shape());
                    self.accum(a, &g);
                }
                Op::Slice(a, start, len) => {
                    let mut g = Tensor::zeros(self.nodes[a.0].value.shape());
                    g.data_mut()[start..start + len].copy_from_slice(gy.data());
                    self.accum(a, &g);
                }
                Op::SumAll(a) => {
                    let g = Tensor::full(self.nodes[a.0].value.shape(), gy.item());
                    self.accum(a, &g);
                }
                Op::MeanAll(a) => {
                    let n = self.nodes[a.0].value.len() as f32;
                    let g = Tensor::full(self.nodes[a.0].value.shape(), gy.item() / n);
                    self.accum(a, &g);
                }
                Op::Rows(table) => {
                    let indices = self.nodes[i].aux.clone();
                    let d = self.nodes[table.0].value.cols();
                    let mut g = Tensor::zeros(self.nodes[table.0].value.shape());
                    for (r, &idx) in indices.iter().enumerate() {
                        for j in 0..d {
                            g.data_mut()[idx as usize * d + j] += gy.data()[r * d + j];
                        }
                    }
                    self.accum(table, &g);
                }
                Op::StackRows(parts) => {
                    let d = self.nodes[parts[0].0].value.len();
                    for (r, p) in parts.into_iter().enumerate() {
                        let g = Tensor::from_vec(
                            self.nodes[p.0].value.shape(),
                            gy.data()[r * d..(r + 1) * d].to_vec(),
                        );
                        self.accum(p, &g);
                    }
                }
                Op::MeanRows(a) => {
                    let shape = self.nodes[a.0].value.shape().to_vec();
                    let (n, d) = (shape[0], shape[1]);
                    let mut g = Tensor::zeros(&shape);
                    for r in 0..n {
                        for j in 0..d {
                            g.data_mut()[r * d + j] = gy.data()[j] / n as f32;
                        }
                    }
                    self.accum(a, &g);
                }
                Op::LayerNorm { x, gamma, beta } => {
                    self.layer_norm_backward(i, x, gamma, beta, &gy);
                }
                Op::L2Normalize(a) => {
                    let norm = self.nodes[i].cache[0];
                    if norm > 1e-12 {
                        let y = &self.nodes[i].value;
                        let dot: f32 = gy.data().iter().zip(y.data()).map(|(&g, &yv)| g * yv).sum();
                        let g = gy.zip_with(y, |g, yv| (g - yv * dot) / norm);
                        self.accum(a, &g);
                    } else {
                        self.accum(a, &gy);
                    }
                }
                Op::CrossEntropyRows(logits) => {
                    let targets = self.nodes[i].aux.clone();
                    let softmax = self.nodes[i].cache.clone();
                    let shape = self.nodes[logits.0].value.shape().to_vec();
                    let (n, c) = (self.nodes[logits.0].value.rows(), self.nodes[logits.0].value.cols());
                    let scale = gy.item() / n as f32;
                    let mut g = Tensor::zeros(&shape);
                    for r in 0..n {
                        for j in 0..c {
                            let mut v = softmax[r * c + j];
                            if j == targets[r] as usize {
                                v -= 1.0;
                            }
                            g.data_mut()[r * c + j] = v * scale;
                        }
                    }
                    self.accum(logits, &g);
                }
            }
        }
    }

    fn conv1d_backward(&mut self, _node: usize, input: Var, weight: Var, bias: Var, pad: usize, gy: &Tensor) {
        // The input-gradient pass is the single most expensive arm of the
        // backward sweep; when the conv input is a `constant` leaf (one-hot
        // character planes) `needs` lets us skip it entirely.
        let need_gx = self.needs[input.0];
        let need_gw = self.needs[weight.0];
        let x = self.nodes[input.0].value.clone();
        let w = self.nodes[weight.0].value.clone();
        let (gx, gw, gb) = conv1d_backward_masked(&x, &w, gy, pad, need_gx, need_gw);
        let gb = gb.reshape(self.nodes[bias.0].value.shape());
        if let Some(gx) = gx {
            self.accum(input, &gx);
        }
        if let Some(gw) = gw {
            self.accum(weight, &gw);
        }
        self.accum(bias, &gb);
    }

    fn layer_norm_backward(&mut self, node: usize, x: Var, gamma: Var, beta: Var, gy: &Tensor) {
        let cache = self.nodes[node].cache.clone();
        let xv = self.nodes[x.0].value.clone();
        let g = self.nodes[gamma.0].value.clone();
        let (n, d) = (xv.rows(), xv.cols());
        let mut gx = Tensor::zeros(xv.shape());
        let mut ggamma = Tensor::zeros(&[d]);
        let mut gbeta = Tensor::zeros(&[d]);
        let stride = 2 + d;
        for r in 0..n {
            let inv_std = cache[r * stride + 1];
            let xhat = &cache[r * stride + 2..r * stride + 2 + d];
            let gyrow = &gy.data()[r * d..(r + 1) * d];
            // dL/dxhat_j = gy_j * gamma_j
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for j in 0..d {
                let dxh = gyrow[j] * g.data()[j];
                sum_dxhat += dxh;
                sum_dxhat_xhat += dxh * xhat[j];
                ggamma.data_mut()[j] += gyrow[j] * xhat[j];
                gbeta.data_mut()[j] += gyrow[j];
            }
            for j in 0..d {
                let dxh = gyrow[j] * g.data()[j];
                gx.data_mut()[r * d + j] =
                    inv_std / d as f32 * (d as f32 * dxh - sum_dxhat - xhat[j] * sum_dxhat_xhat);
            }
        }
        let ggamma = ggamma.reshape(self.nodes[gamma.0].value.shape());
        let gbeta = gbeta.reshape(self.nodes[beta.0].value.shape());
        self.accum(x, &gx);
        self.accum(gamma, &ggamma);
        self.accum(beta, &gbeta);
    }

    fn accum(&mut self, v: Var, g: &Tensor) {
        // Dead-branch pruning: `backward` rebuilds `needs` before the reverse
        // sweep, so a node whose subtree contains only `constant` leaves never
        // materializes a gradient.
        if !self.needs[v.0] {
            return;
        }
        match &mut self.nodes[v.0].grad {
            Some(existing) => existing.axpy(1.0, g),
            slot @ None => *slot = Some(g.clone()),
        }
    }
}

/// Numerically-stable in-place softmax of one row.
fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in row.iter_mut() {
        *x /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central-difference gradient check for a scalar function of one leaf.
    fn check_grad(
        shape: &[usize],
        build: impl Fn(&mut Graph, Var) -> Var,
        seed: u64,
        tol: f32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x0 = Tensor::uniform(shape, -0.9, 0.9, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(x0.clone());
        let loss = build(&mut g, x);
        g.backward(loss);
        let analytic = g.grad(x).expect("no grad reached leaf").clone();

        let eps = 1e-3f32;
        for i in 0..x0.len() {
            let mut plus = x0.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x0.clone();
            minus.data_mut()[i] -= eps;
            let f = |t: Tensor| {
                let mut g = Graph::new();
                let x = g.leaf(t);
                let loss = build(&mut g, x);
                g.value(loss).item()
            };
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                "grad mismatch at {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_sum_of_relu() {
        check_grad(&[6], |g, x| {
            let r = g.relu(x);
            g.sum_all(r)
        }, 1, 1e-2);
    }

    #[test]
    fn grad_sigmoid_tanh_chain() {
        check_grad(&[5], |g, x| {
            let s = g.sigmoid(x);
            let t = g.tanh(s);
            g.sum_all(t)
        }, 2, 1e-2);
    }

    #[test]
    fn grad_matmul() {
        check_grad(&[3, 4], |g, x| {
            let mut rng = StdRng::seed_from_u64(99);
            let w = g.leaf(Tensor::uniform(&[4, 2], -1.0, 1.0, &mut rng));
            let y = g.matmul(x, w);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        }, 3, 1e-2);
    }

    #[test]
    fn grad_matmul_rhs() {
        // gradient with respect to the right operand
        check_grad(&[4, 2], |g, x| {
            let mut rng = StdRng::seed_from_u64(98);
            let a = g.leaf(Tensor::uniform(&[3, 4], -1.0, 1.0, &mut rng));
            let y = g.matmul(a, x);
            g.sum_all(y)
        }, 4, 1e-2);
    }

    #[test]
    fn grad_conv1d_input() {
        check_grad(&[3, 7], |g, x| {
            let mut rng = StdRng::seed_from_u64(5);
            let w = g.leaf(Tensor::uniform(&[2, 3, 3], -1.0, 1.0, &mut rng));
            let b = g.leaf(Tensor::uniform(&[2], -0.1, 0.1, &mut rng));
            let y = g.conv1d(x, w, b, 1);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        }, 6, 1e-2);
    }

    #[test]
    fn grad_conv1d_weight() {
        check_grad(&[2, 3, 3], |g, w| {
            let mut rng = StdRng::seed_from_u64(7);
            let x = g.leaf(Tensor::uniform(&[3, 7], -1.0, 1.0, &mut rng));
            let b = g.leaf(Tensor::zeros(&[2]));
            let y = g.conv1d(x, w, b, 1);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        }, 8, 1e-2);
    }

    #[test]
    fn grad_conv1d_bias() {
        check_grad(&[2], |g, b| {
            let mut rng = StdRng::seed_from_u64(9);
            let x = g.leaf(Tensor::uniform(&[3, 5], -1.0, 1.0, &mut rng));
            let w = g.leaf(Tensor::uniform(&[2, 3, 3], -1.0, 1.0, &mut rng));
            let y = g.conv1d(x, w, b, 1);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        }, 10, 1e-2);
    }

    #[test]
    fn constant_leaves_skip_gradients_without_changing_param_grads() {
        // Build the same conv -> concat -> matmul network twice: once with the
        // data inputs as ordinary leaves, once as constants. Parameter
        // gradients must be bit-identical; constants must receive no gradient.
        let mut rng = StdRng::seed_from_u64(42);
        let x0 = Tensor::uniform(&[3, 7], -1.0, 1.0, &mut rng);
        let sem0 = Tensor::uniform(&[4], -1.0, 1.0, &mut rng);
        let w0 = Tensor::uniform(&[2, 3, 3], -1.0, 1.0, &mut rng);
        let b0 = Tensor::uniform(&[2], -0.1, 0.1, &mut rng);
        let m0 = Tensor::uniform(&[6, 3], -1.0, 1.0, &mut rng);

        let run = |as_constant: bool| {
            let mut g = Graph::new();
            let x = if as_constant { g.constant(x0.clone()) } else { g.leaf(x0.clone()) };
            let sem = if as_constant { g.constant(sem0.clone()) } else { g.leaf(sem0.clone()) };
            let w = g.leaf(w0.clone());
            let b = g.leaf(b0.clone());
            let m = g.leaf(m0.clone());
            let y = g.conv1d(x, w, b, 1);
            let pooled = g.max_pool_time(y);
            let cat = g.concat(&[pooled, sem]);
            let row = g.reshape(cat, &[1, 6]);
            let out = g.matmul(row, m);
            let sq = g.mul(out, out);
            let loss = g.sum_all(sq);
            g.backward(loss);
            let grads: Vec<Vec<f32>> = [w, b, m]
                .iter()
                .map(|&v| g.grad(v).expect("param grad missing").data().to_vec())
                .collect();
            let data_grads =
                (g.grad(x).is_some(), g.grad(sem).is_some());
            (grads, data_grads)
        };

        let (leaf_grads, leaf_has) = run(false);
        let (const_grads, const_has) = run(true);
        assert_eq!(leaf_has, (true, true), "leaf inputs should receive grads");
        assert_eq!(const_has, (false, false), "constants must receive no grad");
        for (a, b) in leaf_grads.iter().zip(&const_grads) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "param grads must be bit-identical");
            }
        }
    }

    #[test]
    fn grad_max_pool_time() {
        check_grad(&[3, 6], |g, x| {
            let y = g.max_pool_time(x);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        }, 11, 1e-2);
    }

    #[test]
    fn grad_softmax_rows() {
        check_grad(&[2, 4], |g, x| {
            let y = g.softmax_rows(x);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        }, 12, 1e-2);
    }

    #[test]
    fn grad_layer_norm() {
        check_grad(&[2, 5], |g, x| {
            let mut rng = StdRng::seed_from_u64(13);
            let gamma = g.leaf(Tensor::uniform(&[5], 0.5, 1.5, &mut rng));
            let beta = g.leaf(Tensor::uniform(&[5], -0.5, 0.5, &mut rng));
            let y = g.layer_norm(x, gamma, beta);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        }, 14, 2e-2);
    }

    #[test]
    fn grad_layer_norm_gamma() {
        check_grad(&[5], |g, gamma| {
            let mut rng = StdRng::seed_from_u64(15);
            let x = g.leaf(Tensor::uniform(&[2, 5], -1.0, 1.0, &mut rng));
            let beta = g.leaf(Tensor::zeros(&[5]));
            let y = g.layer_norm(x, gamma, beta);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        }, 16, 1e-2);
    }

    #[test]
    fn grad_cross_entropy() {
        check_grad(&[3, 4], |g, x| {
            g.cross_entropy_rows(x, &[0, 2, 1])
        }, 17, 1e-2);
    }

    #[test]
    fn grad_mean_rows_and_stack() {
        check_grad(&[8], |g, x| {
            let a = g.slice(x, 0, 4);
            let b = g.slice(x, 4, 4);
            let m = g.stack_rows(&[a, b]);
            let mean = g.mean_rows(m);
            let sq = g.mul(mean, mean);
            g.sum_all(sq)
        }, 18, 1e-2);
    }

    #[test]
    fn grad_rows_gather() {
        check_grad(&[4, 3], |g, table| {
            let picked = g.rows(table, &[1, 1, 3]);
            let sq = g.mul(picked, picked);
            g.sum_all(sq)
        }, 19, 1e-2);
    }

    #[test]
    fn grad_add_bias() {
        check_grad(&[3], |g, bias| {
            let mut rng = StdRng::seed_from_u64(20);
            let x = g.leaf(Tensor::uniform(&[2, 3], -1.0, 1.0, &mut rng));
            let y = g.add_bias(x, bias);
            let sq = g.mul(y, y);
            g.sum_all(sq)
        }, 21, 1e-2);
    }

    #[test]
    fn grad_shared_variable_accumulates() {
        // f(x) = sum(x*x) -> df/dx = 2x even though x appears twice in Mul
        let mut g = Graph::new();
        let x = g.leaf(Tensor::vector(&[3.0, -2.0]));
        let sq = g.mul(x, x);
        let loss = g.sum_all(sq);
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        assert_eq!(grad.data(), &[6.0, -4.0]);
    }

    #[test]
    fn grad_triplet_style_loss() {
        // relu(d(a,p) - d(a,n) + margin) built from primitive ops
        check_grad(&[4], |g, a| {
            let mut rng = StdRng::seed_from_u64(30);
            let p = g.leaf(Tensor::uniform(&[4], -1.0, 1.0, &mut rng));
            let n = g.leaf(Tensor::uniform(&[4], -1.0, 1.0, &mut rng));
            let dp = g.sub(a, p);
            let dp2 = g.mul(dp, dp);
            let dap = g.sum_all(dp2);
            let dn = g.sub(a, n);
            let dn2 = g.mul(dn, dn);
            let dan = g.sum_all(dn2);
            let diff = g.sub(dap, dan);
            let margined = g.add_scalar(diff, 0.3);
            g.relu(margined)
        }, 31, 1e-2);
    }

    #[test]
    fn conv1d_shape_same_padding() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[4, 10]));
        let w = g.leaf(Tensor::zeros(&[8, 4, 3]));
        let b = g.leaf(Tensor::zeros(&[8]));
        let y = g.conv1d(x, w, b, 1);
        assert_eq!(g.value(y).shape(), &[8, 10]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let y = g.softmax_rows(x);
        let v = g.value(y);
        for r in 0..2 {
            let s: f32 = v.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_small() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(&[1, 3], vec![20.0, 0.0, 0.0]));
        let loss = g.cross_entropy_rows(x, &[0]);
        assert!(g.value(loss).item() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "backward root must be scalar")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(&[3]));
        g.backward(x);
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::vector(&[1.0, 2.0, 3.0, 4.0]));
        let a = g.slice(x, 0, 2);
        let b = g.slice(x, 2, 2);
        let back = g.concat(&[a, b]);
        assert_eq!(g.value(back).data(), &[1.0, 2.0, 3.0, 4.0]);
    }
}

#[cfg(test)]
mod l2_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn l2_normalize_unit_norm() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::vector(&[3.0, 4.0]));
        let y = g.l2_normalize(x);
        assert!((g.value(y).norm() - 1.0).abs() < 1e-6);
        assert!((g.value(y).data()[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn l2_normalize_zero_vector_passes_through() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::vector(&[0.0, 0.0]));
        let y = g.l2_normalize(x);
        assert_eq!(g.value(y).data(), &[0.0, 0.0]);
    }

    #[test]
    fn l2_normalize_gradient_check() {
        let mut rng = StdRng::seed_from_u64(77);
        let x0 = Tensor::uniform(&[5], 0.2, 1.0, &mut rng);
        let build = |g: &mut Graph, x: Var| {
            let n = g.l2_normalize(x);
            let t = g.leaf(Tensor::vector(&[0.9, 0.1, -0.3, 0.2, 0.4]));
            let d = g.sub(n, t);
            let sq = g.mul(d, d);
            g.sum_all(sq)
        };
        let mut g = Graph::new();
        let x = g.leaf(x0.clone());
        let loss = build(&mut g, x);
        g.backward(loss);
        let analytic = g.grad(x).unwrap().clone();
        let eps = 1e-3f32;
        for i in 0..x0.len() {
            let mut plus = x0.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x0.clone();
            minus.data_mut()[i] -= eps;
            let f = |t: Tensor| {
                let mut g = Graph::new();
                let x = g.leaf(t);
                let loss = build(&mut g, x);
                g.value(loss).item()
            };
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            assert!(
                (analytic.data()[i] - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                "grad mismatch at {i}: {} vs {numeric}",
                analytic.data()[i]
            );
        }
    }
}

#[cfg(test)]
mod segment_pool_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_segment_equals_max_pool_time() {
        let mut rng = StdRng::seed_from_u64(8);
        let x0 = Tensor::uniform(&[3, 7], -1.0, 1.0, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(x0.clone());
        let a = g.max_pool_time(x);
        let b = g.max_pool_segments(x, 1);
        assert_eq!(g.value(a).data(), g.value(b).data());
    }

    #[test]
    fn segments_cover_chunks() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(&[1, 6], vec![1.0, 5.0, 2.0, 9.0, 0.0, 3.0]));
        let y = g.max_pool_segments(x, 2);
        assert_eq!(g.value(y).data(), &[5.0, 9.0]);
        let y3 = g.max_pool_segments(x, 3);
        assert_eq!(g.value(y3).data(), &[5.0, 9.0, 3.0]);
    }

    #[test]
    fn gradient_flows_to_argmax_only() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(&[1, 4], vec![1.0, 5.0, 2.0, 9.0]));
        let y = g.max_pool_segments(x, 2);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data(), &[0.0, 1.0, 0.0, 1.0]);
    }
}
