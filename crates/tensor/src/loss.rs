//! Loss builders on top of the autograd graph.

use crate::graph::{Graph, Var};

/// Squared Euclidean distance between two same-shape embedding nodes.
pub fn sq_distance(g: &mut Graph, a: Var, b: Var) -> Var {
    let d = g.sub(a, b);
    let d2 = g.mul(d, d);
    g.sum_all(d2)
}

/// Triplet loss for one `(anchor, positive, negative)` sample:
/// `max(0, ‖f(a) − f(p)‖² − ‖f(a) − f(n)‖² + margin)` — Equation (3) of the
/// EmbLookup paper.
pub fn triplet(g: &mut Graph, anchor: Var, positive: Var, negative: Var, margin: f32) -> Var {
    let d_ap = sq_distance(g, anchor, positive);
    let d_an = sq_distance(g, anchor, negative);
    let diff = g.sub(d_ap, d_an);
    let shifted = g.add_scalar(diff, margin);
    g.relu(shifted)
}

/// Mean of a batch of scalar loss nodes.
///
/// # Panics
/// Panics on an empty batch.
pub fn batch_mean(g: &mut Graph, losses: &[Var]) -> Var {
    assert!(!losses.is_empty(), "batch_mean of zero losses");
    let cat = g.concat(losses);
    g.mean_all(cat)
}

/// Mean squared error between a prediction node and a target node.
pub fn mse(g: &mut Graph, pred: Var, target: Var) -> Var {
    let d = g.sub(pred, target);
    let d2 = g.mul(d, d);
    g.mean_all(d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn triplet_zero_when_negative_is_far() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::vector(&[0.0, 0.0]));
        let p = g.leaf(Tensor::vector(&[0.1, 0.0]));
        let n = g.leaf(Tensor::vector(&[5.0, 5.0]));
        let l = triplet(&mut g, a, p, n, 0.5);
        assert_eq!(g.value(l).item(), 0.0);
    }

    #[test]
    fn triplet_positive_when_negative_is_close() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::vector(&[0.0, 0.0]));
        let p = g.leaf(Tensor::vector(&[1.0, 0.0]));
        let n = g.leaf(Tensor::vector(&[0.1, 0.0]));
        let l = triplet(&mut g, a, p, n, 0.5);
        // d_ap = 1.0, d_an = 0.01 -> loss = 1 - 0.01 + 0.5
        assert!((g.value(l).item() - 1.49).abs() < 1e-5);
    }

    #[test]
    fn triplet_respects_margin_boundary() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::vector(&[0.0]));
        let p = g.leaf(Tensor::vector(&[1.0])); // d_ap = 1
        let n = g.leaf(Tensor::vector(&[1.2247449])); // d_an = 1.5
        let l = triplet(&mut g, a, p, n, 0.5);
        // exactly at the margin: loss == 0
        assert!(g.value(l).item().abs() < 1e-4);
    }

    #[test]
    fn batch_mean_averages() {
        let mut g = Graph::new();
        let l1 = g.leaf(Tensor::scalar(1.0));
        let l2 = g.leaf(Tensor::scalar(3.0));
        let m = batch_mean(&mut g, &[l1, l2]);
        assert_eq!(g.value(m).item(), 2.0);
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::vector(&[1.0, 2.0]));
        let b = g.leaf(Tensor::vector(&[1.0, 2.0]));
        let l = mse(&mut g, a, b);
        assert_eq!(g.value(l).item(), 0.0);
    }
}

/// Contrastive-style loss on a triplet (the paper's future work mentions
/// "evaluating other loss functions"): pulls the positive with `d(a,p)²`
/// and pushes the negative with `max(0, margin − d(a,n))²`, the classic
/// Hadsell-Chopra-LeCun form applied to both pairs of the triplet.
pub fn contrastive_triplet(
    g: &mut Graph,
    anchor: Var,
    positive: Var,
    negative: Var,
    margin: f32,
) -> Var {
    let d_ap = sq_distance(g, anchor, positive);
    // hinge on the *distance* (not squared): margin - d(a,n)
    let d_an = sq_distance(g, anchor, negative);
    // use sqrt-free surrogate: max(0, margin^2 - d(a,n)^2) keeps the op set
    // small and has the same zero set
    let neg_d = g.scale(d_an, -1.0);
    let hinge = g.add_scalar(neg_d, margin * margin);
    let pushed = g.relu(hinge);
    g.add(d_ap, pushed)
}

#[cfg(test)]
mod contrastive_tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn zero_when_positive_coincides_and_negative_is_far() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::vector(&[0.0, 0.0]));
        let p = g.leaf(Tensor::vector(&[0.0, 0.0]));
        let n = g.leaf(Tensor::vector(&[9.0, 9.0]));
        let l = contrastive_triplet(&mut g, a, p, n, 1.0);
        assert_eq!(g.value(l).item(), 0.0);
    }

    #[test]
    fn penalizes_close_negative_even_with_perfect_positive() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::vector(&[0.0]));
        let p = g.leaf(Tensor::vector(&[0.0]));
        let n = g.leaf(Tensor::vector(&[0.1]));
        let l = contrastive_triplet(&mut g, a, p, n, 1.0);
        // margin² - d² = 1 - 0.01
        assert!((g.value(l).item() - 0.99).abs() < 1e-5);
    }

    #[test]
    fn penalizes_distant_positive_unconditionally() {
        // unlike triplet loss, contrastive keeps pulling the positive even
        // when the negative is already far
        let mut g = Graph::new();
        let a = g.leaf(Tensor::vector(&[0.0]));
        let p = g.leaf(Tensor::vector(&[2.0]));
        let n = g.leaf(Tensor::vector(&[50.0]));
        let l = contrastive_triplet(&mut g, a, p, n, 1.0);
        assert!((g.value(l).item() - 4.0).abs() < 1e-4);
    }
}
