//! Dense row-major `f32` tensor used throughout the deep-learning substrate.
//!
//! The tensor is deliberately simple: a shape vector plus a contiguous
//! `Vec<f32>`. EmbLookup's models only need rank-1/2/3 tensors, and keeping
//! the representation flat makes the hot loops (matmul, conv) easy for the
//! compiler to vectorize.

use rand::Rng;
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// Shapes are immutable after construction except through [`Tensor::reshape`],
/// which only re-labels the same buffer. All arithmetic helpers panic on
/// shape mismatch with a message naming the offending shapes; the autograd
/// layer in [`crate::graph`] validates shapes before calling them.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a one-filled tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: vec![],
            data: vec![value],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "tensor data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn vector(data: &[f32]) -> Self {
        Tensor {
            shape: vec![data.len()],
            data: data.to_vec(),
        }
    }

    /// Samples every element uniformly from `[lo, hi)`.
    pub fn uniform<R: Rng + ?Sized>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Samples every element from a normal distribution via Box–Muller.
    ///
    /// We avoid `rand_distr` (not in the offline dependency set); Box–Muller
    /// over two uniforms is plenty for weight initialization.
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], mean: f32, std: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Tensor rank (number of dimensions).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Borrows the flat data buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the flat data buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns the scalar value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on tensor with {} elements",
            self.data.len()
        );
        self.data[0]
    }

    /// Number of rows of a rank-2 tensor (rank-1 counts as a single row).
    pub fn rows(&self) -> usize {
        match self.shape.len() {
            0 | 1 => 1,
            _ => self.shape[0],
        }
    }

    /// Number of columns of a rank-1 or rank-2 tensor.
    pub fn cols(&self) -> usize {
        match self.shape.len() {
            0 => 1,
            1 => self.shape[0],
            _ => self.shape[1],
        }
    }

    /// Reads element `(i, j)` of a rank-2 tensor.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Writes element `(i, j)` of a rank-2 tensor.
    #[inline]
    pub fn set2(&mut self, i: usize, j: usize, v: f32) {
        debug_assert_eq!(self.rank(), 2);
        self.data[i * self.shape[1] + j] = v;
    }

    /// Re-labels the buffer with a new shape of identical element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "cannot reshape {:?} ({} elems) to {:?} ({} elems)",
            self.shape,
            self.data.len(),
            shape,
            n
        );
        self.shape = shape.to_vec();
        self
    }

    /// Elementwise addition producing a new tensor.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction producing a new tensor.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product producing a new tensor.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise combination with `f`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_mut(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// `self += alpha * other`, in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "axpy shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Dot product of two tensors of identical shape, flattened.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "dot shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Matrix product of two rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// Two kernels, picked by shape:
    ///
    /// * **Row-vector / skinny lhs** (`m == 1` or `k < 8`): the original
    ///   ikj axpy order with an exact-zero sparsity skip. The inference
    ///   hot path (`[1,k] x [k,n]` in `Linear::infer`) always lands here,
    ///   so its summation order — and therefore its output bits — are
    ///   unchanged.
    /// * **Blocked** (everything else, i.e. training batches): packs
    ///   `other` transposed once so every inner product walks contiguous
    ///   memory, then computes 4-wide-unrolled dots in column blocks that
    ///   keep the packed panel resident in cache. The unroll breaks the
    ///   serial float dependency chain the compiler cannot reassociate.
    ///
    /// # Panics
    /// Panics unless both tensors are rank-2 with compatible inner dims.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank-2, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "matmul rhs must be rank-2, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dim mismatch: {:?} x {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        if m == 1 || k < 8 {
            for i in 0..m {
                let arow = &self.data[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                for (p, &a) in arow.iter().enumerate() {
                    // lint: allow(L007) exact-zero sparsity skip; any nonzero (or NaN) takes the dense path
                    if a == 0.0 {
                        continue; // one-hot inputs make lhs extremely sparse
                    }
                    let brow = &other.data[p * n..(p + 1) * n];
                    for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                        *o += a * b;
                    }
                }
            }
        } else {
            let bt = other.transpose();
            const JB: usize = 32; // 32 packed rows of k floats ≈ one L1 panel
            for j0 in (0..n).step_by(JB) {
                let j1 = (j0 + JB).min(n);
                for i in 0..m {
                    let arow = &self.data[i * k..(i + 1) * k];
                    let orow = &mut out[i * n..(i + 1) * n];
                    for (j, o) in (j0..j1).zip(orow[j0..j1].iter_mut()) {
                        *o = dot_unrolled(arow, bt.row(j));
                    }
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics unless the tensor is rank-2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose needs rank-2, got {:?}", self.shape);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut data = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                data[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data,
        }
    }

    /// Borrows row `i` of a rank-2 tensor as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert_eq!(self.rank(), 2);
        let n = self.shape[1];
        &self.data[i * n..(i + 1) * n]
    }

    /// Squared Euclidean distance between two same-shape tensors.
    pub fn sq_dist(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "sq_dist shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum()
    }

    /// True when every element is finite (no NaN / infinities).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// Inner product — the building block of the blocked matmul kernel.
/// Delegates to the runtime-dispatched kernel layer in `emblookup-ann`
/// (AVX2/NEON when available, an unrolled scalar otherwise), so the
/// matmul inner loop and the ANN distance loops share one home.
#[inline]
pub(crate) fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    emblookup_ann::kernels::dot(a, b)
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, … {:.4}] ({} elems)",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.data.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_and_zeros() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.data().iter().all(|&x| x == 0.0));
        let o = Tensor::full(&[4], 2.5);
        assert!(o.data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn from_vec_checks_len() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.at2(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::uniform(&[4, 4], -1.0, 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.set2(i, i, 1.0);
        }
        let c = a.matmul(&eye);
        for (x, y) in a.data().iter().zip(c.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn blocked_matmul_matches_naive_on_odd_shapes() {
        // shapes straddling the kernel-selection boundary and the 4-wide
        // unroll / 32-column block edges, none a multiple of the tile
        let shapes = [
            (7, 13, 5),   // blocked (k >= 8), n smaller than one block
            (7, 5, 13),   // axpy fallback (k < 8)
            (1, 64, 33),  // row-vector path
            (3, 9, 67),   // blocked, n spans three partial blocks
            (5, 8, 32),   // exact unroll and block multiples
            (2, 130, 31), // k leaves a 2-element unroll remainder
        ];
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &shapes {
            let a = Tensor::uniform(&[m, k], -1.0, 1.0, &mut rng);
            let b = Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng);
            let fast = a.matmul(&b);
            assert_eq!(fast.shape(), &[m, n]);
            for i in 0..m {
                for j in 0..n {
                    let naive: f32 = (0..k).map(|p| a.at2(i, p) * b.at2(p, j)).sum();
                    let got = fast.at2(i, j);
                    assert!(
                        (got - naive).abs() <= 1e-4 * naive.abs().max(1.0),
                        "({m},{k},{n}) at ({i},{j}): {got} vs {naive}"
                    );
                }
            }
        }
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::uniform(&[3, 5], -1.0, 1.0, &mut rng);
        let b = a.transpose().transpose();
        assert_eq!(a, b);
    }

    #[test]
    fn randn_has_roughly_right_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&[10_000], 0.0, 1.0, &mut rng);
        let mean = t.sum() / t.len() as f32;
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::vector(&[1.0, 2.0]);
        let b = Tensor::vector(&[10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale_mut(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }

    #[test]
    fn sq_dist_matches_norm_of_diff() {
        let a = Tensor::vector(&[1.0, 2.0, 3.0]);
        let b = Tensor::vector(&[0.0, 0.0, 0.0]);
        assert!((a.sq_dist(&b) - 14.0).abs() < 1e-6);
        assert!((a.norm() - 14.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn reshape_relabels() {
        let t = Tensor::from_vec(&[2, 3], vec![0.0; 6]).reshape(&[3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
    }

    #[test]
    fn item_on_scalar() {
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }
}
