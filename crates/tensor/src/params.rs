//! Named parameter storage shared between layers and optimizers.
//!
//! Layers own [`ParamId`]s into a [`ParamStore`]; during a training step the
//! layer binds each parameter into the current [`crate::graph::Graph`]
//! as a leaf and records the binding in a [`Bindings`] list so the optimizer
//! can pull gradients back out after `backward`.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Handle to a parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Owns every trainable tensor of a model, addressable by [`ParamId`].
#[derive(Default)]
pub struct ParamStore {
    params: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new parameter under `name` and returns its id.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.params.push(value);
        self.names.push(name.into());
        ParamId(self.params.len() - 1)
    }

    /// Borrows a parameter's current value.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.params[id.0]
    }

    /// Mutably borrows a parameter's value (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0]
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameter is registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_weights(&self) -> usize {
        self.params.iter().map(Tensor::len).sum()
    }

    /// Iterates over `(id, name, tensor)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.params
            .iter()
            .zip(self.names.iter())
            .enumerate()
            .map(|(i, (t, n))| (ParamId(i), n.as_str(), t))
    }

    /// Serializes all parameters to a flat byte buffer (shape-prefixed,
    /// little-endian f32). Names are not stored; loading requires a store
    /// with an identical registration order.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for t in &self.params {
            out.extend_from_slice(&(t.shape().len() as u64).to_le_bytes());
            for &d in t.shape() {
                out.extend_from_slice(&(d as u64).to_le_bytes());
            }
            for &x in t.data() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out
    }

    /// Restores parameter values from [`ParamStore::to_bytes`] output.
    ///
    /// # Errors
    /// Returns a description of the first structural mismatch encountered
    /// (truncated buffer, wrong parameter count, or shape mismatch).
    pub fn load_bytes(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut cur = 0usize;
        let read_u64 = |cur: &mut usize| -> Result<u64, String> {
            let end = *cur + 8;
            let slice = bytes.get(*cur..end).ok_or("truncated buffer")?;
            *cur = end;
            Ok(u64::from_le_bytes(slice.try_into().map_err(|_| "truncated buffer")?))
        };
        let count = read_u64(&mut cur)? as usize;
        if count != self.params.len() {
            return Err(format!(
                "parameter count mismatch: stored {count}, expected {}",
                self.params.len()
            ));
        }
        for i in 0..count {
            let rank = read_u64(&mut cur)? as usize;
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                shape.push(read_u64(&mut cur)? as usize);
            }
            if shape != self.params[i].shape() {
                return Err(format!(
                    "shape mismatch for parameter {i} ({}): stored {:?}, expected {:?}",
                    self.names[i],
                    shape,
                    self.params[i].shape()
                ));
            }
            let n: usize = shape.iter().product();
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                let end = cur + 4;
                let slice = bytes.get(cur..end).ok_or("truncated buffer")?;
                cur = end;
                data.push(f32::from_le_bytes(slice.try_into().map_err(|_| "truncated buffer")?));
            }
            self.params[i] = Tensor::from_vec(&shape, data);
        }
        Ok(())
    }
}

/// Records which graph leaf each bound parameter occupies for one step.
///
/// Binding is memoized: binding the same parameter twice (an LSTM cell
/// re-used across time steps, a layer shared across the three legs of a
/// triplet) returns the same leaf, so gradients from every use accumulate
/// on one node and the optimizer applies exactly one update per parameter.
#[derive(Default)]
pub struct Bindings {
    bound: Vec<(ParamId, Var)>,
    memo: std::collections::HashMap<usize, Var>,
}

impl Bindings {
    /// Creates an empty binding list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds parameter `id` into `graph` as a leaf and records the pairing.
    /// Re-binding an already-bound parameter returns its existing leaf.
    pub fn bind(&mut self, graph: &mut Graph, store: &ParamStore, id: ParamId) -> Var {
        if let Some(&var) = self.memo.get(&id.0) {
            return var;
        }
        let var = graph.leaf(store.get(id).clone());
        self.bound.push((id, var));
        self.memo.insert(id.0, var);
        var
    }

    /// Iterates over recorded `(parameter, leaf)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, Var)> + '_ {
        self.bound.iter().copied()
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.bound.len()
    }

    /// True when nothing has been bound yet.
    pub fn is_empty(&self) -> bool {
        self.bound.is_empty()
    }

    /// Sum of squared gradient norms over all bound parameters
    /// (useful for gradient-explosion diagnostics in tests).
    pub fn grad_norm_sq(&self, graph: &Graph) -> f32 {
        self.bound
            .iter()
            .filter_map(|&(_, v)| graph.grad(v))
            .map(|g| g.data().iter().map(|x| x * x).sum::<f32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::zeros(&[2, 2]));
        assert_eq!(store.name(id), "w");
        assert_eq!(store.get(id).shape(), &[2, 2]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_weights(), 4);
    }

    #[test]
    fn serialization_round_trip() {
        let mut store = ParamStore::new();
        store.register("a", Tensor::vector(&[1.0, -2.5, 3.25]));
        store.register("b", Tensor::from_vec(&[2, 2], vec![0.5; 4]));
        let bytes = store.to_bytes();

        let mut fresh = ParamStore::new();
        let a = fresh.register("a", Tensor::zeros(&[3]));
        let b = fresh.register("b", Tensor::zeros(&[2, 2]));
        fresh.load_bytes(&bytes).unwrap();
        assert_eq!(fresh.get(a).data(), &[1.0, -2.5, 3.25]);
        assert_eq!(fresh.get(b).data(), &[0.5; 4]);
    }

    #[test]
    fn load_rejects_wrong_shape() {
        let mut store = ParamStore::new();
        store.register("a", Tensor::zeros(&[3]));
        let bytes = store.to_bytes();
        let mut fresh = ParamStore::new();
        fresh.register("a", Tensor::zeros(&[4]));
        let err = fresh.load_bytes(&bytes).unwrap_err();
        assert!(err.contains("shape mismatch"), "{err}");
    }

    #[test]
    fn load_rejects_truncated() {
        let mut store = ParamStore::new();
        store.register("a", Tensor::zeros(&[3]));
        let bytes = store.to_bytes();
        let mut fresh = ParamStore::new();
        fresh.register("a", Tensor::zeros(&[3]));
        assert!(fresh.load_bytes(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn bindings_record_pairs() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::vector(&[1.0, 2.0]));
        let mut graph = Graph::new();
        let mut bindings = Bindings::new();
        let var = bindings.bind(&mut graph, &store, id);
        assert_eq!(graph.value(var).data(), &[1.0, 2.0]);
        assert_eq!(bindings.iter().next(), Some((id, var)));
    }
}

#[cfg(test)]
mod memo_tests {
    use super::*;

    #[test]
    fn rebinding_returns_same_leaf() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::vector(&[1.0]));
        let mut graph = Graph::new();
        let mut bindings = Bindings::new();
        let v1 = bindings.bind(&mut graph, &store, id);
        let v2 = bindings.bind(&mut graph, &store, id);
        assert_eq!(v1, v2);
        assert_eq!(bindings.len(), 1);
        assert_eq!(graph.len(), 1);
    }

    #[test]
    fn shared_binding_accumulates_gradient() {
        // f(w) = sum(w) + sum(w) through two separate forward uses of the
        // same bound parameter -> df/dw = 2
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::vector(&[3.0]));
        let mut graph = Graph::new();
        let mut bindings = Bindings::new();
        let v1 = bindings.bind(&mut graph, &store, id);
        let v2 = bindings.bind(&mut graph, &store, id);
        let s1 = graph.sum_all(v1);
        let s2 = graph.sum_all(v2);
        let total = graph.add(s1, s2);
        graph.backward(total);
        let (pid, var) = bindings.iter().next().unwrap();
        assert_eq!(pid, id);
        assert_eq!(graph.grad(var).unwrap().data(), &[2.0]);
    }
}
