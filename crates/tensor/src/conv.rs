//! Shared 1-D convolution kernels used by both the autograd graph and the
//! graph-free inference path.
//!
//! The loops are arranged as shifted slice operations (`out[t] += w *
//! x[t + k - pad]` over a precomputed valid range) so the inner loop is a
//! branch-free fused multiply-add the compiler can vectorize — this is the
//! hottest code in EmbLookup training.

use crate::tensor::Tensor;

/// Computes the valid output range `[t0, t1)` for kernel offset `kk`:
/// positions where `t + kk - pad` falls inside `[0, l)`.
#[inline]
fn valid_range(kk: usize, pad: usize, l: usize, l_out: usize) -> (usize, usize, isize) {
    let shift = kk as isize - pad as isize;
    let t0 = if shift < 0 { (-shift) as usize } else { 0 };
    let t1_signed = l as isize - shift;
    let t1 = t1_signed.clamp(0, l_out as isize) as usize;
    (t0, t1.max(t0), shift)
}

/// Forward convolution: input `[C_in, L]`, weight `[C_out, C_in, K]`,
/// bias `[C_out]`, zero padding, stride 1 → `[C_out, L + 2*pad - K + 1]`.
///
/// # Panics
/// Panics on shape mismatches (see the message for the offending dims).
pub fn conv1d_forward(x: &Tensor, w: &Tensor, b: &Tensor, pad: usize) -> Tensor {
    assert_eq!(x.rank(), 2, "conv1d input must be [C_in, L], got {:?}", x.shape());
    assert_eq!(w.rank(), 3, "conv1d weight must be [C_out, C_in, K], got {:?}", w.shape());
    let (c_in, l) = (x.shape()[0], x.shape()[1]);
    let (c_out, w_cin, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    assert_eq!(c_in, w_cin, "conv1d channel mismatch: input {c_in}, weight {w_cin}");
    assert_eq!(b.len(), c_out, "conv1d bias len {} != C_out {}", b.len(), c_out);
    assert!(
        l + 2 * pad >= k,
        "conv1d kernel {k} larger than padded input {}",
        l + 2 * pad
    );
    let l_out = l + 2 * pad - k + 1;
    let mut out = Tensor::zeros(&[c_out, l_out]);
    let xd = x.data();
    let wd = w.data();
    let od = out.data_mut();
    for co in 0..c_out {
        let orow = &mut od[co * l_out..(co + 1) * l_out];
        let bias = b.data()[co];
        for o in orow.iter_mut() {
            *o = bias;
        }
        for ci in 0..c_in {
            let xrow = &xd[ci * l..(ci + 1) * l];
            let wbase = co * c_in * k + ci * k;
            for kk in 0..k {
                let wv = wd[wbase + kk];
                // lint: allow(L007) exact-zero sparsity skip; any nonzero (or NaN) takes the dense path
                if wv == 0.0 {
                    continue;
                }
                let (t0, t1, shift) = valid_range(kk, pad, l, l_out);
                let xs = &xrow[(t0 as isize + shift) as usize..(t1 as isize + shift) as usize];
                for (o, &xv) in orow[t0..t1].iter_mut().zip(xs) {
                    *o += wv * xv;
                }
            }
        }
    }
    out
}

/// Gradients of the forward convolution. Returns `(gx, gw, gb)`.
pub fn conv1d_backward(
    x: &Tensor,
    w: &Tensor,
    gy: &Tensor,
    pad: usize,
) -> (Tensor, Tensor, Tensor) {
    let (c_in, l) = (x.shape()[0], x.shape()[1]);
    let (c_out, _, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    let l_out = gy.shape()[1];
    let mut gx = Tensor::zeros(x.shape());
    let mut gw = Tensor::zeros(w.shape());
    let mut gb = Tensor::zeros(&[c_out]);
    let xd = x.data();
    let wd = w.data();
    let gyd = gy.data();
    {
        let gxd = gx.data_mut();
        let gwd = gw.data_mut();
        let gbd = gb.data_mut();
        for co in 0..c_out {
            let grow = &gyd[co * l_out..(co + 1) * l_out];
            gbd[co] = grow.iter().sum();
            for ci in 0..c_in {
                let xrow = &xd[ci * l..(ci + 1) * l];
                let gxrow = &mut gxd[ci * l..(ci + 1) * l];
                let wbase = co * c_in * k + ci * k;
                for kk in 0..k {
                    let (t0, t1, shift) = valid_range(kk, pad, l, l_out);
                    if t1 <= t0 {
                        continue;
                    }
                    let xs0 = (t0 as isize + shift) as usize;
                    let xs1 = (t1 as isize + shift) as usize;
                    // gw[co,ci,kk] = Σ_t gy[t] * x[t+shift]
                    let mut acc = 0.0f32;
                    for (&g, &xv) in grow[t0..t1].iter().zip(&xrow[xs0..xs1]) {
                        acc += g * xv;
                    }
                    gwd[wbase + kk] += acc;
                    // gx[t+shift] += gy[t] * w
                    let wv = wd[wbase + kk];
                    // lint: allow(L007) exact-zero sparsity skip mirroring the forward pass
                    if wv != 0.0 {
                        for (gx_v, &g) in gxrow[xs0..xs1].iter_mut().zip(&grow[t0..t1]) {
                            *gx_v += g * wv;
                        }
                    }
                }
            }
        }
    }
    (gx, gw, gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference O(everything) implementation for differential testing.
    fn conv_reference(x: &Tensor, w: &Tensor, b: &Tensor, pad: usize) -> Tensor {
        let (c_in, l) = (x.shape()[0], x.shape()[1]);
        let (c_out, _, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
        let l_out = l + 2 * pad - k + 1;
        let mut out = Tensor::zeros(&[c_out, l_out]);
        for co in 0..c_out {
            for t in 0..l_out {
                let mut acc = b.data()[co];
                for ci in 0..c_in {
                    for kk in 0..k {
                        let src = t + kk;
                        if src < pad || src - pad >= l {
                            continue;
                        }
                        acc += w.data()[co * c_in * k + ci * k + kk] * x.data()[ci * l + src - pad];
                    }
                }
                out.data_mut()[co * l_out + t] = acc;
            }
        }
        out
    }

    #[test]
    fn matches_reference_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        for (c_in, l, c_out, k, pad) in
            [(3, 7, 2, 3, 1), (5, 12, 8, 3, 1), (1, 4, 1, 3, 1), (4, 9, 6, 5, 2), (2, 5, 3, 1, 0)]
        {
            let x = Tensor::uniform(&[c_in, l], -1.0, 1.0, &mut rng);
            let w = Tensor::uniform(&[c_out, c_in, k], -1.0, 1.0, &mut rng);
            let b = Tensor::uniform(&[c_out], -0.5, 0.5, &mut rng);
            let fast = conv1d_forward(&x, &w, &b, pad);
            let slow = conv_reference(&x, &w, &b, pad);
            assert_eq!(fast.shape(), slow.shape());
            for (a, bb) in fast.data().iter().zip(slow.data()) {
                assert!((a - bb).abs() < 1e-5, "mismatch {a} vs {bb} at {c_in},{l},{c_out},{k},{pad}");
            }
        }
    }

    #[test]
    fn backward_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::uniform(&[3, 10], -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(&[4, 3, 3], -1.0, 1.0, &mut rng);
        let gy = Tensor::uniform(&[4, 10], -1.0, 1.0, &mut rng);
        let (gx, gw, gb) = conv1d_backward(&x, &w, &gy, 1);
        assert_eq!(gx.shape(), &[3, 10]);
        assert_eq!(gw.shape(), &[4, 3, 3]);
        assert_eq!(gb.shape(), &[4]);
    }
}
