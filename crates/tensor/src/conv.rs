//! Shared 1-D convolution kernels used by both the autograd graph and the
//! graph-free inference path.
//!
//! The loops are arranged as shifted slice operations (`out[t] += w *
//! x[t + k - pad]` over a precomputed valid range) so the inner loop is a
//! branch-free fused multiply-add the compiler can vectorize — this is the
//! hottest code in EmbLookup training.

use crate::tensor::Tensor;

/// Computes the valid output range `[t0, t1)` for kernel offset `kk`:
/// positions where `t + kk - pad` falls inside `[0, l)`.
#[inline]
fn valid_range(kk: usize, pad: usize, l: usize, l_out: usize) -> (usize, usize, isize) {
    let shift = kk as isize - pad as isize;
    let t0 = if shift < 0 { (-shift) as usize } else { 0 };
    let t1_signed = l as isize - shift;
    let t1 = t1_signed.clamp(0, l_out as isize) as usize;
    (t0, t1.max(t0), shift)
}

/// Forward convolution: input `[C_in, L]`, weight `[C_out, C_in, K]`,
/// bias `[C_out]`, zero padding, stride 1 → `[C_out, L + 2*pad - K + 1]`.
///
/// # Panics
/// Panics on shape mismatches (see the message for the offending dims).
pub fn conv1d_forward(x: &Tensor, w: &Tensor, b: &Tensor, pad: usize) -> Tensor {
    assert_eq!(x.rank(), 2, "conv1d input must be [C_in, L], got {:?}", x.shape());
    assert_eq!(w.rank(), 3, "conv1d weight must be [C_out, C_in, K], got {:?}", w.shape());
    let (c_in, l) = (x.shape()[0], x.shape()[1]);
    let (c_out, w_cin, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    assert_eq!(c_in, w_cin, "conv1d channel mismatch: input {c_in}, weight {w_cin}");
    assert_eq!(b.len(), c_out, "conv1d bias len {} != C_out {}", b.len(), c_out);
    assert!(
        l + 2 * pad >= k,
        "conv1d kernel {k} larger than padded input {}",
        l + 2 * pad
    );
    let l_out = l + 2 * pad - k + 1;
    let mut out = Tensor::zeros(&[c_out, l_out]);
    let xd = x.data();
    let wd = w.data();
    let od = out.data_mut();
    if let Some(cols) = column_onehot(xd, c_in, l) {
        // One-hot fast path: each input column holds a single nonzero
        // (the first conv layer sees one-hot character columns), so the
        // convolution degenerates to gathering k weight taps per column —
        // C_out * L * K work instead of C_out * C_in * L * K.
        for co in 0..c_out {
            let orow = &mut od[co * l_out..(co + 1) * l_out];
            let bias = b.data()[co];
            for o in orow.iter_mut() {
                *o = bias;
            }
            let wrow = &wd[co * c_in * k..(co + 1) * c_in * k];
            for (u, &(row, val)) in cols.iter().enumerate() {
                if row == u32::MAX {
                    continue;
                }
                let wbase = row as usize * k;
                // input column u feeds output t where t + kk - pad == u
                for kk in 0..k.min(u + pad + 1) {
                    let t = u + pad - kk;
                    if t < l_out {
                        orow[t] += val * wrow[wbase + kk];
                    }
                }
            }
        }
        return out;
    }
    let occupied = channel_occupancy(xd, c_in, l);
    for co in 0..c_out {
        let orow = &mut od[co * l_out..(co + 1) * l_out];
        let bias = b.data()[co];
        for o in orow.iter_mut() {
            *o = bias;
        }
        for ci in 0..c_in {
            if !occupied[ci] {
                continue;
            }
            let xrow = &xd[ci * l..(ci + 1) * l];
            let wbase = co * c_in * k + ci * k;
            for kk in 0..k {
                let wv = wd[wbase + kk];
                // lint: allow(L007) exact-zero sparsity skip; any nonzero (or NaN) takes the dense path
                if wv == 0.0 {
                    continue;
                }
                let (t0, t1, shift) = valid_range(kk, pad, l, l_out);
                let xs = &xrow[(t0 as isize + shift) as usize..(t1 as isize + shift) as usize];
                for (o, &xv) in orow[t0..t1].iter_mut().zip(xs) {
                    *o += wv * xv;
                }
            }
        }
    }
    out
}

/// Marks input channels with at least one nonzero sample. The first conv
/// layer sees one-hot character rows, so on a typical mention only a
/// handful of the alphabet-sized channel set is occupied — every other
/// channel contributes nothing to the output (or to `gw`) and its
/// `c_out * k` kernel taps can be skipped wholesale.
#[inline]
fn channel_occupancy(xd: &[f32], c_in: usize, l: usize) -> Vec<bool> {
    (0..c_in)
        // lint: allow(L007) exact-zero occupancy test; NaN counts as occupied and takes the dense path
        .map(|ci| xd[ci * l..(ci + 1) * l].iter().any(|&v| v != 0.0))
        .collect()
}

/// Detects a column-wise one-hot input: every time column holds at most one
/// nonzero sample. Returns the `(channel, value)` per column (`u32::MAX`
/// marks an all-zero column), or `None` as soon as any column has two
/// nonzeros — for dense activations that bail-out triggers within the first
/// couple of rows, so the probe costs roughly one row scan. Narrow inputs
/// skip the probe: the dense kernel is already cheap there.
#[inline]
fn column_onehot(xd: &[f32], c_in: usize, l: usize) -> Option<Vec<(u32, f32)>> {
    if c_in < 8 {
        return None;
    }
    let mut cols = vec![(u32::MAX, 0.0f32); l];
    for ci in 0..c_in {
        let xrow = &xd[ci * l..(ci + 1) * l];
        for (t, &v) in xrow.iter().enumerate() {
            // lint: allow(L007) exact-zero sparsity test; a NaN column entry stays on this path and propagates through the gather exactly like the dense sum
            if v != 0.0 {
                if cols[t].0 != u32::MAX {
                    return None;
                }
                cols[t] = (ci as u32, v);
            }
        }
    }
    Some(cols)
}

/// Gradients of the forward convolution. Returns `(gx, gw, gb)`.
pub fn conv1d_backward(
    x: &Tensor,
    w: &Tensor,
    gy: &Tensor,
    pad: usize,
) -> (Tensor, Tensor, Tensor) {
    let (gx, gw, gb) = conv1d_backward_masked(x, w, gy, pad, true, true);
    (
        gx.unwrap_or_else(|| Tensor::zeros(x.shape())),
        gw.unwrap_or_else(|| Tensor::zeros(w.shape())),
        gb,
    )
}

/// Gradients of the forward convolution with per-output masking: `gx` and
/// `gw` are only computed when requested, so the autograd tape can skip
/// the input gradient entirely when the conv reads a constant leaf (the
/// first layer's one-hot characters — its `gx` is the single most
/// expensive useless tensor of a training step). `gb` is always produced.
pub(crate) fn conv1d_backward_masked(
    x: &Tensor,
    w: &Tensor,
    gy: &Tensor,
    pad: usize,
    need_gx: bool,
    need_gw: bool,
) -> (Option<Tensor>, Option<Tensor>, Tensor) {
    let (c_in, l) = (x.shape()[0], x.shape()[1]);
    let (c_out, _, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    let l_out = gy.shape()[1];
    let xd = x.data();
    let wd = w.data();
    let gyd = gy.data();

    let mut gb = Tensor::zeros(&[c_out]);
    for co in 0..c_out {
        gb.data_mut()[co] = gyd[co * l_out..(co + 1) * l_out].iter().sum();
    }

    let gw = need_gw.then(|| conv1d_grad_weight(xd, c_in, l, w.shape(), gyd, l_out, pad));

    let gx = need_gx.then(|| {
        let mut gx = Tensor::zeros(x.shape());
        let gxd = gx.data_mut();
        for co in 0..c_out {
            let grow = &gyd[co * l_out..(co + 1) * l_out];
            for ci in 0..c_in {
                let gxrow = &mut gxd[ci * l..(ci + 1) * l];
                let wbase = co * c_in * k + ci * k;
                for kk in 0..k {
                    let (t0, t1, shift) = valid_range(kk, pad, l, l_out);
                    if t1 <= t0 {
                        continue;
                    }
                    let xs0 = (t0 as isize + shift) as usize;
                    let xs1 = (t1 as isize + shift) as usize;
                    let wv = wd[wbase + kk];
                    // lint: allow(L007) exact-zero sparsity skip mirroring the forward pass
                    if wv != 0.0 {
                        for (gx_v, &g) in gxrow[xs0..xs1].iter_mut().zip(&grow[t0..t1]) {
                            *gx_v += g * wv;
                        }
                    }
                }
            }
        }
        gx
    });

    (gx, gw, gb)
}

/// Weight gradient `gw[co,ci,kk] = Σ_t gy[co,t] * x[ci, t + kk - pad]`,
/// choosing between the one-hot gather (scatter one tap per nonzero input
/// column) and the dense occupancy-gated unrolled reduction.
fn conv1d_grad_weight(
    xd: &[f32],
    c_in: usize,
    l: usize,
    w_shape: &[usize],
    gyd: &[f32],
    l_out: usize,
    pad: usize,
) -> Tensor {
    let (c_out, k) = (w_shape[0], w_shape[2]);
    let mut gw = Tensor::zeros(w_shape);
    let gwd = gw.data_mut();
    if let Some(cols) = column_onehot(xd, c_in, l) {
        for co in 0..c_out {
            let grow = &gyd[co * l_out..(co + 1) * l_out];
            let gwrow = &mut gwd[co * c_in * k..(co + 1) * c_in * k];
            for (u, &(row, val)) in cols.iter().enumerate() {
                if row == u32::MAX {
                    continue;
                }
                let wbase = row as usize * k;
                for kk in 0..k.min(u + pad + 1) {
                    let t = u + pad - kk;
                    if t < l_out {
                        gwrow[wbase + kk] += grow[t] * val;
                    }
                }
            }
        }
        return gw;
    }
    let occupied = channel_occupancy(xd, c_in, l);
    for co in 0..c_out {
        let grow = &gyd[co * l_out..(co + 1) * l_out];
        for ci in 0..c_in {
            if !occupied[ci] {
                continue;
            }
            let xrow = &xd[ci * l..(ci + 1) * l];
            let wbase = co * c_in * k + ci * k;
            for kk in 0..k {
                let (t0, t1, shift) = valid_range(kk, pad, l, l_out);
                if t1 <= t0 {
                    continue;
                }
                let xs0 = (t0 as isize + shift) as usize;
                let xs1 = (t1 as isize + shift) as usize;
                // the unrolled reduction keeps four sums in flight (the
                // compiler cannot reassociate a single float accumulator)
                let mut cg = grow[t0..t1].chunks_exact(4);
                let mut cx = xrow[xs0..xs1].chunks_exact(4);
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (kg, kx) in (&mut cg).zip(&mut cx) {
                    s0 += kg[0] * kx[0];
                    s1 += kg[1] * kx[1];
                    s2 += kg[2] * kx[2];
                    s3 += kg[3] * kx[3];
                }
                let rest: f32 = cg
                    .remainder()
                    .iter()
                    .zip(cx.remainder())
                    .map(|(&g, &xv)| g * xv)
                    .sum();
                gwd[wbase + kk] += (s0 + s1) + (s2 + s3) + rest;
            }
        }
    }
    gw
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference O(everything) implementation for differential testing.
    fn conv_reference(x: &Tensor, w: &Tensor, b: &Tensor, pad: usize) -> Tensor {
        let (c_in, l) = (x.shape()[0], x.shape()[1]);
        let (c_out, _, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
        let l_out = l + 2 * pad - k + 1;
        let mut out = Tensor::zeros(&[c_out, l_out]);
        for co in 0..c_out {
            for t in 0..l_out {
                let mut acc = b.data()[co];
                for ci in 0..c_in {
                    for kk in 0..k {
                        let src = t + kk;
                        if src < pad || src - pad >= l {
                            continue;
                        }
                        acc += w.data()[co * c_in * k + ci * k + kk] * x.data()[ci * l + src - pad];
                    }
                }
                out.data_mut()[co * l_out + t] = acc;
            }
        }
        out
    }

    #[test]
    fn matches_reference_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(1);
        for (c_in, l, c_out, k, pad) in
            [(3, 7, 2, 3, 1), (5, 12, 8, 3, 1), (1, 4, 1, 3, 1), (4, 9, 6, 5, 2), (2, 5, 3, 1, 0)]
        {
            let x = Tensor::uniform(&[c_in, l], -1.0, 1.0, &mut rng);
            let w = Tensor::uniform(&[c_out, c_in, k], -1.0, 1.0, &mut rng);
            let b = Tensor::uniform(&[c_out], -0.5, 0.5, &mut rng);
            let fast = conv1d_forward(&x, &w, &b, pad);
            let slow = conv_reference(&x, &w, &b, pad);
            assert_eq!(fast.shape(), slow.shape());
            for (a, bb) in fast.data().iter().zip(slow.data()) {
                assert!((a - bb).abs() < 1e-5, "mismatch {a} vs {bb} at {c_in},{l},{c_out},{k},{pad}");
            }
        }
    }

    /// Naive per-element backward for differential testing.
    fn backward_reference(x: &Tensor, w: &Tensor, gy: &Tensor, pad: usize) -> (Tensor, Tensor, Tensor) {
        let (c_in, l) = (x.shape()[0], x.shape()[1]);
        let (c_out, _, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
        let l_out = gy.shape()[1];
        let mut gx = Tensor::zeros(x.shape());
        let mut gw = Tensor::zeros(w.shape());
        let mut gb = Tensor::zeros(&[c_out]);
        for co in 0..c_out {
            for t in 0..l_out {
                let g = gy.data()[co * l_out + t];
                gb.data_mut()[co] += g;
                for ci in 0..c_in {
                    for kk in 0..k {
                        let src = t + kk;
                        if src < pad || src - pad >= l {
                            continue;
                        }
                        gw.data_mut()[co * c_in * k + ci * k + kk] += g * x.data()[ci * l + src - pad];
                        gx.data_mut()[ci * l + src - pad] += g * w.data()[co * c_in * k + ci * k + kk];
                    }
                }
            }
        }
        (gx, gw, gb)
    }

    #[test]
    fn backward_matches_reference_with_zero_channels() {
        let mut rng = StdRng::seed_from_u64(9);
        for (c_in, l, c_out, k, pad) in [(5, 9, 4, 3, 1), (3, 6, 2, 5, 2), (6, 11, 3, 3, 1)] {
            let mut x = Tensor::uniform(&[c_in, l], -1.0, 1.0, &mut rng);
            // zero out alternating channels to exercise the occupancy skip
            for ci in (0..c_in).step_by(2) {
                for v in &mut x.data_mut()[ci * l..(ci + 1) * l] {
                    *v = 0.0;
                }
            }
            let w = Tensor::uniform(&[c_out, c_in, k], -1.0, 1.0, &mut rng);
            let l_out = l + 2 * pad - k + 1;
            let gy = Tensor::uniform(&[c_out, l_out], -1.0, 1.0, &mut rng);
            let (gx, gw, gb) = conv1d_backward(&x, &w, &gy, pad);
            let (rx, rw, rb) = backward_reference(&x, &w, &gy, pad);
            for (name, fast, slow) in [("gx", &gx, &rx), ("gw", &gw, &rw), ("gb", &gb, &rb)] {
                for (a, b) in fast.data().iter().zip(slow.data()) {
                    assert!((a - b).abs() < 1e-4, "{name} mismatch {a} vs {b} at {c_in},{l},{c_out},{k},{pad}");
                }
            }
        }
    }

    #[test]
    fn onehot_fast_path_matches_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        // column-one-hot input shaped like the first layer's character
        // encoding, with empty columns and non-unit values
        let (c_in, l, c_out, k, pad) = (24usize, 13usize, 5, 3, 1);
        let mut x = Tensor::zeros(&[c_in, l]);
        for t in 0..l {
            if t % 5 == 4 {
                continue;
            }
            let ci = (t * 7 + 3) % c_in;
            x.data_mut()[ci * l + t] = 0.25 + t as f32 * 0.5;
        }
        let w = Tensor::uniform(&[c_out, c_in, k], -1.0, 1.0, &mut rng);
        let b = Tensor::uniform(&[c_out], -0.5, 0.5, &mut rng);
        let fast = conv1d_forward(&x, &w, &b, pad);
        let slow = conv_reference(&x, &w, &b, pad);
        for (a, bb) in fast.data().iter().zip(slow.data()) {
            assert!((a - bb).abs() < 1e-5, "fwd mismatch {a} vs {bb}");
        }
        let l_out = l + 2 * pad - k + 1;
        let gy = Tensor::uniform(&[c_out, l_out], -1.0, 1.0, &mut rng);
        let (gx, gw, gb) = conv1d_backward(&x, &w, &gy, pad);
        let (rx, rw, rb) = backward_reference(&x, &w, &gy, pad);
        for (name, fast, slow) in [("gx", &gx, &rx), ("gw", &gw, &rw), ("gb", &gb, &rb)] {
            for (a, b) in fast.data().iter().zip(slow.data()) {
                assert!((a - b).abs() < 1e-4, "{name} mismatch {a} vs {b}");
            }
        }
        // masked call skips the unwanted outputs entirely
        let (no_gx, no_gw, gb2) = conv1d_backward_masked(&x, &w, &gy, pad, false, false);
        assert!(no_gx.is_none() && no_gw.is_none());
        assert_eq!(gb.data(), gb2.data());
    }

    #[test]
    fn backward_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::uniform(&[3, 10], -1.0, 1.0, &mut rng);
        let w = Tensor::uniform(&[4, 3, 3], -1.0, 1.0, &mut rng);
        let gy = Tensor::uniform(&[4, 10], -1.0, 1.0, &mut rng);
        let (gx, gw, gb) = conv1d_backward(&x, &w, &gy, 1);
        assert_eq!(gx.shape(), &[3, 10]);
        assert_eq!(gw.shape(), &[4, 3, 3]);
        assert_eq!(gb.shape(), &[4]);
    }
}
