//! End-to-end check that the instrumented pipeline actually reports what
//! it does: training emits one event per epoch, the index build is timed,
//! and every single-query lookup lands in the latency histogram.
//!
//! One test function on purpose — the assertions read the process-global
//! registry and the global subscriber, which parallel tests would share.

use emblookup_core::{EmbLookup, EmbLookupConfig};
use emblookup_kg::{generate, LookupService, SynthKgConfig};
use emblookup_obs::{CollectingSubscriber, EventKind};
use std::sync::Arc;

#[test]
fn training_and_lookups_populate_the_registry() {
    let sub = Arc::new(CollectingSubscriber::new());
    emblookup_obs::set_subscriber(sub.clone());

    let s = generate(SynthKgConfig::tiny(17));
    let config = EmbLookupConfig::tiny(17);
    let epochs = config.epochs;
    let el = EmbLookup::train_on(&s.kg, config);

    let labels: Vec<String> = s.kg.entities().map(|e| e.label.clone()).collect();
    for i in 0..100 {
        let hits = el.lookup(&labels[i % labels.len()], 5);
        assert_eq!(hits.len(), 5);
    }
    emblookup_obs::clear_subscriber();

    // one structured event per training epoch, exactly
    assert_eq!(sub.count("train.epoch", EventKind::Point), epochs);
    // ... and the span ends for each pipeline stage
    for stage in ["train.total", "train.fasttext", "train.mining", "train.triplet", "index.build"] {
        assert_eq!(sub.count(stage, EventKind::SpanEnd), 1, "stage {stage}");
    }

    let snap = emblookup_obs::global().snapshot();
    assert_eq!(snap.counter("train.epochs"), Some(epochs as u64));
    assert!(snap.counter("mining.triplets").unwrap_or(0) > 0);

    let build = snap.histogram("index.build").expect("index.build timed");
    assert_eq!(build.count, 1);
    assert!(build.max() > 0, "index build recorded a zero duration");

    let lat = snap.histogram("lookup.latency").expect("lookup latency histogram");
    assert_eq!(lat.count, 100);
    assert!(lat.p50() > 0 && lat.p99() >= lat.p50());

    // the tiny config indexes a flat backend: the ann counters must agree
    assert_eq!(snap.counter("ann.flat.searches"), Some(100));
    assert_eq!(snap.gauge("index.entities"), Some(s.kg.num_entities() as f64));
}
