//! End-to-end check that the instrumented pipeline actually reports what
//! it does: training emits one event per epoch, the index build is timed,
//! and every single-query lookup lands in the latency histogram.
//!
//! One test function on purpose — the assertions read the process-global
//! registry and the global subscriber, which parallel tests would share.

use emblookup_core::{EmbLookup, EmbLookupConfig};
use emblookup_kg::{generate, LookupService, SynthKgConfig};
use emblookup_obs::{CollectingSubscriber, EventKind};
use std::sync::Arc;

#[test]
fn training_and_lookups_populate_the_registry() {
    let sub = Arc::new(CollectingSubscriber::new());
    emblookup_obs::set_subscriber(sub.clone());

    let s = generate(SynthKgConfig::tiny(17));
    let config = EmbLookupConfig::tiny(17);
    let epochs = config.epochs;
    let el = EmbLookup::train_on(&s.kg, config);

    let labels: Vec<String> = s.kg.entities().map(|e| e.label.clone()).collect();
    for i in 0..100 {
        let hits = el.lookup(&labels[i % labels.len()], 5);
        assert_eq!(hits.len(), 5);
    }

    // bulk path: the batch's wall time is attributed per query
    let qrefs: Vec<&str> = labels.iter().take(8).map(|s| s.as_str()).collect();
    let batch = el.bulk_lookup(&qrefs, 3);
    assert_eq!(batch.len(), 8);
    emblookup_obs::clear_subscriber();

    // one structured event per training epoch, exactly
    assert_eq!(sub.count("train.epoch", EventKind::Point), epochs);
    // ... and the span ends for each pipeline stage
    for stage in ["train.total", "train.fasttext", "train.mining", "train.triplet", "index.build"] {
        assert_eq!(sub.count(stage, EventKind::SpanEnd), 1, "stage {stage}");
    }

    let snap = emblookup_obs::global().snapshot();
    assert_eq!(snap.counter("train.epochs"), Some(epochs as u64));
    assert!(snap.counter("mining.triplets").unwrap_or(0) > 0);

    let build = snap.histogram("index.build").expect("index.build timed");
    assert_eq!(build.count, 1);
    assert!(build.max() > 0, "index build recorded a zero duration");

    let lat = snap.histogram("lookup.latency").expect("lookup latency histogram");
    assert_eq!(lat.count, 100);
    assert!(lat.p50() > 0 && lat.p99() >= lat.p50());

    // the bulk batch lands once in lookup.bulk, and once per query —
    // with the batch's wall time split evenly — in lookup.latency.bulk,
    // so batched and single-query latency are directly comparable
    let bulk_batch = snap.histogram("lookup.bulk").expect("bulk batch histogram");
    assert_eq!(bulk_batch.count, 1);
    let bulk = snap.histogram("lookup.latency.bulk").expect("bulk per-query latency");
    assert_eq!(bulk.count, 8);
    assert!(bulk.max() > 0, "bulk per-query latency recorded a zero duration");
    assert!(
        bulk.sum <= bulk_batch.sum,
        "per-query attribution {} exceeds batch wall time {}",
        bulk.sum,
        bulk_batch.sum
    );
    assert_eq!(snap.counter("lookup.bulk.queries"), Some(8));

    // the tiny config indexes a flat backend: the ann counters must agree
    // (100 single lookups + 8 bulk queries)
    assert_eq!(snap.counter("ann.flat.searches"), Some(108));
    assert_eq!(snap.gauge("index.entities"), Some(s.kg.num_entities() as f64));
}
