//! Retrieval-quality metrics for lookup services: hit@k, MRR, and recall
//! curves — the measurements behind the paper's sensitivity analysis and
//! this crate's ablation harness.

use emblookup_kg::{EntityId, LookupService};

/// A labelled retrieval workload: query strings with their ground-truth
/// entities.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    queries: Vec<(String, EntityId)>,
}

impl Workload {
    /// Creates an empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a labelled query.
    pub fn push(&mut self, query: impl Into<String>, truth: EntityId) {
        self.queries.push((query.into(), truth));
    }

    /// Builds a workload from `(query, truth)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, EntityId)>) -> Self {
        Workload { queries: pairs.into_iter().collect() }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the workload holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Fraction of queries whose truth appears in the top `k`.
    pub fn hit_at_k(&self, service: &dyn LookupService, k: usize) -> f64 {
        if self.queries.is_empty() {
            return 1.0;
        }
        let refs: Vec<&str> = self.queries.iter().map(|(q, _)| q.as_str()).collect();
        let results = service.lookup_batch(&refs, k);
        let hits = results
            .iter()
            .zip(&self.queries)
            .filter(|(hits, (_, truth))| hits.iter().any(|c| c.entity == *truth))
            .count();
        hits as f64 / self.queries.len() as f64
    }

    /// Mean reciprocal rank within the top `k` (0 contribution on miss).
    pub fn mrr_at_k(&self, service: &dyn LookupService, k: usize) -> f64 {
        if self.queries.is_empty() {
            return 1.0;
        }
        let refs: Vec<&str> = self.queries.iter().map(|(q, _)| q.as_str()).collect();
        let results = service.lookup_batch(&refs, k);
        let mut acc = 0.0;
        for (hits, (_, truth)) in results.iter().zip(&self.queries) {
            if let Some(rank) = hits.iter().position(|c| c.entity == *truth) {
                acc += 1.0 / (rank + 1) as f64;
            }
        }
        acc / self.queries.len() as f64
    }

    /// Hit rate at every `k` in `ks` (one batched pass at `max(ks)`).
    pub fn hit_curve(&self, service: &dyn LookupService, ks: &[usize]) -> Vec<(usize, f64)> {
        let max_k = ks.iter().copied().max().unwrap_or(0);
        if self.queries.is_empty() || max_k == 0 {
            return ks.iter().map(|&k| (k, 1.0)).collect();
        }
        let refs: Vec<&str> = self.queries.iter().map(|(q, _)| q.as_str()).collect();
        let results = service.lookup_batch(&refs, max_k);
        ks.iter()
            .map(|&k| {
                let hits = results
                    .iter()
                    .zip(&self.queries)
                    .filter(|(hits, (_, truth))| {
                        hits.iter().take(k).any(|c| c.entity == *truth)
                    })
                    .count();
                (k, hits as f64 / self.queries.len() as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_kg::Candidate;

    /// Service returning a fixed ranking for every query.
    struct Fixed(Vec<EntityId>);
    impl LookupService for Fixed {
        fn lookup(&self, _q: &str, k: usize) -> Vec<Candidate> {
            self.0
                .iter()
                .take(k)
                .map(|&entity| Candidate { entity, score: 0.0 })
                .collect()
        }
        fn name(&self) -> &str {
            "fixed"
        }
    }

    fn workload() -> Workload {
        Workload::from_pairs(vec![
            ("a".to_string(), EntityId(0)), // rank 1
            ("b".to_string(), EntityId(2)), // rank 3
            ("c".to_string(), EntityId(9)), // miss
        ])
    }

    #[test]
    fn hit_at_k_counts_correctly() {
        let svc = Fixed(vec![EntityId(0), EntityId(1), EntityId(2)]);
        let w = workload();
        assert!((w.hit_at_k(&svc, 1) - 1.0 / 3.0).abs() < 1e-9);
        assert!((w.hit_at_k(&svc, 3) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn mrr_weights_rank() {
        let svc = Fixed(vec![EntityId(0), EntityId(1), EntityId(2)]);
        let w = workload();
        // (1 + 1/3 + 0) / 3
        assert!((w.mrr_at_k(&svc, 3) - (1.0 + 1.0 / 3.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn hit_curve_is_monotone() {
        let svc = Fixed(vec![EntityId(0), EntityId(1), EntityId(2), EntityId(9)]);
        let w = workload();
        let curve = w.hit_curve(&svc, &[1, 2, 3, 4]);
        for pair in curve.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_workload_is_vacuous() {
        let svc = Fixed(vec![]);
        let w = Workload::new();
        assert_eq!(w.hit_at_k(&svc, 5), 1.0);
        assert_eq!(w.mrr_at_k(&svc, 5), 1.0);
    }
}
