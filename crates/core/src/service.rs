//! The end-to-end EmbLookup service: train → embed → index → `lookup(q, k)`.
// lint: hot-path

use crate::config::{Compression, EmbLookupConfig};
use crate::errors::{LookupError, TrainError};
use crate::index::EntityIndex;
use crate::mining::{mine_triplets, MiningConfig};
use crate::model::EmbLookupModel;
use crate::trainer::{train, TrainReport};
use emblookup_ann::VectorSet;
use emblookup_embed::{Corpus, FastText, FastTextConfig};
use emblookup_kg::{Candidate, EntityId, KnowledgeGraph, LookupService};
use emblookup_obs::names;
use emblookup_obs::Histogram;
use std::sync::Arc;

/// A trained EmbLookup pipeline ready to serve lookups over one KG.
///
/// Scores returned through [`LookupService`] are negated squared distances
/// so that higher is better, matching the trait contract.
pub struct EmbLookup {
    model: Arc<EmbLookupModel>,
    index: EntityIndex,
    report: TrainReport,
    /// Threads used for bulk lookups (the GPU-surrogate path).
    pub bulk_threads: usize,
    /// Pre-resolved latency histogram: the hot lookup path does a single
    /// atomic record per query and never touches the registry lock.
    lookup_hist: Arc<Histogram>,
    bulk_hist: Arc<Histogram>,
    /// Per-query latency attributed inside a batch: the batch's wall time
    /// divided across its queries (`lookup.latency.bulk`, or
    /// `lookup.latency.<scope>.bulk` under a metrics scope).
    bulk_query_hist: Arc<Histogram>,
    bulk_queries: Arc<emblookup_obs::Counter>,
}

impl EmbLookup {
    /// Trains the full pipeline on a knowledge graph:
    /// corpus verbalization → fastText → triplet mining → two-phase
    /// triplet training → entity index build.
    ///
    /// Thin panicking wrapper over [`EmbLookup::try_train_on`] for
    /// callers that treat a bad config or empty KG as a programming
    /// error; the serving layer uses the fallible twin and answers `400`.
    ///
    /// # Panics
    /// Panics on an empty KG or invalid configuration.
    pub fn train_on(kg: &KnowledgeGraph, config: EmbLookupConfig) -> Self {
        match Self::try_train_on(kg, config) {
            Ok(service) => service,
            // lint: allow(L001) documented panic contract of the thin wrapper; try_train_on is the fallible path
            Err(e) => panic!("EmbLookup::train_on: {e}"),
        }
    }

    /// Fallible twin of [`EmbLookup::train_on`]: rejects invalid
    /// configuration, an empty knowledge graph, or a mining setup that
    /// yields no triplets as typed [`TrainError`]s instead of aborting
    /// the process.
    ///
    /// # Errors
    /// [`TrainError::InvalidConfig`] when `config` fails validation,
    /// [`TrainError::EmptyKg`] when `kg` has no entities, and
    /// [`TrainError::NoTriplets`] when mining produces nothing to train
    /// on.
    pub fn try_train_on(kg: &KnowledgeGraph, config: EmbLookupConfig) -> Result<Self, TrainError> {
        // lint: allow(L010) build entry point: validation errors allocate only on rejection, never per query
        config.validate().map_err(TrainError::InvalidConfig)?;
        if kg.num_entities() == 0 {
            return Err(TrainError::EmptyKg);
        }
        if config.triplets_per_entity == 0 {
            return Err(TrainError::NoTriplets);
        }
        let total = emblookup_obs::Span::enter(names::TRAIN_TOTAL)
            .field("entities", kg.num_entities() as u64);

        let corpus = Corpus::from_kg(kg);
        let fasttext = {
            let _s = emblookup_obs::Span::enter(names::TRAIN_FASTTEXT)
                .field("dim", config.fasttext_dim as u64)
                .field("epochs", config.fasttext_epochs as u64);
            // lint: allow(L010) training entry point, not the per-query loop
            FastText::train(
                &corpus,
                FastTextConfig {
                    dim: config.fasttext_dim,
                    epochs: config.fasttext_epochs,
                    seed: config.seed,
                    ..Default::default()
                },
            )
        };
        // lint: allow(L010) model assembly happens once per (re)train
        let mut model = EmbLookupModel::new(fasttext, config.clone());
        // lint: allow(L010) triplet mining is training-time
        let triplets = mine_triplets(
            kg,
            &MiningConfig::with_budget(config.triplets_per_entity, config.seed),
        );
        if triplets.is_empty() {
            return Err(TrainError::NoTriplets);
        }
        // lint: allow(L010) training loop: progress events may print; never runs while serving
        let report = train(&mut model, &triplets);
        let index = EntityIndex::build(&model, kg, config.compression, num_threads());
        drop(total);
        Ok(Self::assemble(Arc::new(model), index, report))
    }

    /// Wraps an already-trained (shared) model, building a fresh index
    /// over `kg` with the given compression — the compression sweeps train
    /// once and re-index the same weights repeatedly.
    pub fn from_model(model: Arc<EmbLookupModel>, kg: &KnowledgeGraph, compression: Compression) -> Self {
        let index = EntityIndex::build(&model, kg, compression, num_threads());
        Self::assemble(model, index, TrainReport::default())
    }

    fn assemble(model: Arc<EmbLookupModel>, index: EntityIndex, report: TrainReport) -> Self {
        let reg = emblookup_obs::global();
        EmbLookup {
            model,
            index,
            report,
            bulk_threads: num_threads(),
            lookup_hist: reg.histogram(names::LOOKUP_LATENCY),
            bulk_hist: reg.histogram(names::LOOKUP_BULK),
            bulk_query_hist: reg.histogram(names::LOOKUP_LATENCY_BULK),
            bulk_queries: reg.counter(names::LOOKUP_BULK_QUERIES),
        }
    }

    /// Re-points the per-query latency histograms at
    /// `lookup.latency.<scope>` / `lookup.latency.<scope>.bulk` — the
    /// benchmarks use this to separate EL (PQ) from EL-NC (flat) timings
    /// in one registry.
    pub fn with_metrics_scope(mut self, scope: &str) -> Self {
        let reg = emblookup_obs::global();
        self.lookup_hist = reg.histogram(&names::lookup_latency_scoped(scope));
        self.bulk_query_hist = reg.histogram(&names::lookup_latency_bulk_scoped(scope));
        self
    }

    /// The underlying model.
    pub fn model(&self) -> &EmbLookupModel {
        &self.model
    }

    /// A shared handle to the model (for re-indexing under a different
    /// compression without retraining).
    pub fn model_arc(&self) -> Arc<EmbLookupModel> {
        Arc::clone(&self.model)
    }

    /// The entity index.
    pub fn index(&self) -> &EntityIndex {
        &self.index
    }

    /// Training statistics.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Embeds a query and returns the `k` nearest entities with distances.
    ///
    /// Latency (embed + ANN search) is recorded with one atomic histogram
    /// update; no lock is held across the search.
    pub fn lookup_with_distances(&self, q: &str, k: usize) -> Vec<(EntityId, f32)> {
        let start = std::time::Instant::now();
        let emb = self.model.embed(q);
        let hits = self.index.search(&emb, k);
        self.lookup_hist.record_duration(start.elapsed());
        hits
    }

    /// Bulk lookup: embeds all queries and searches the index, both split
    /// across `self.bulk_threads` threads.
    ///
    /// Whole-batch wall time goes to `lookup.bulk`; the same time divided
    /// across the batch's queries is attributed per query into
    /// `lookup.latency.bulk`, so batched and single-query latency land in
    /// one comparable `lookup.latency.*` family.
    pub fn bulk_lookup(&self, queries: &[&str], k: usize) -> Vec<Vec<(EntityId, f32)>> {
        let start = std::time::Instant::now();
        let embeddings = self.model.embed_batch(queries, self.bulk_threads);
        let mut qs = VectorSet::new(self.model.dim());
        for e in &embeddings {
            qs.push(e);
        }
        let hits = self.index.search_batch(&qs, k, self.bulk_threads);
        let elapsed = start.elapsed();
        self.bulk_hist.record_duration(elapsed);
        if !queries.is_empty() {
            let per_query =
                u64::try_from(elapsed.as_nanos() / queries.len() as u128).unwrap_or(u64::MAX);
            self.bulk_query_hist.record_n(per_query, queries.len() as u64);
        }
        self.bulk_queries.add(queries.len() as u64);
        hits
    }

    /// Traced twin of [`EmbLookup::lookup_with_distances`]: identical
    /// results and the same histogram recording (linked to the trace as
    /// an exemplar), plus `stage.encode` / `stage.search` child spans
    /// under `parent` with the backend's `visited` annotation.
    pub fn lookup_with_distances_traced(
        &self,
        q: &str,
        k: usize,
        parent: &emblookup_obs::TraceSpan,
    ) -> Vec<(EntityId, f32)> {
        let start = std::time::Instant::now();
        let encode = parent.child(names::SPAN_STAGE_ENCODE);
        let emb = self.model.embed(q);
        encode.finish();
        let search = parent.child(names::SPAN_STAGE_SEARCH);
        let hits = self.index.search_traced(&emb, k, &search);
        search.finish();
        self.lookup_hist
            .record_duration_with_exemplar(start.elapsed(), parent.trace().id());
        hits
    }

    /// Traced twin of [`EmbLookup::bulk_lookup`]: each query runs the
    /// embed + search pipeline inside a `pool.chunk` child span of
    /// `parent`. Chunking is derived from the query count alone (at
    /// most [`EmbLookup::BULK_TRACE_CHUNKS`] chunks), never from the
    /// pool width, so the span tree shape is identical at every
    /// `EMBLOOKUP_THREADS` setting; results are bit-identical to the
    /// untraced batched path.
    pub fn bulk_lookup_traced(
        &self,
        queries: &[&str],
        k: usize,
        parent: &emblookup_obs::TraceSpan,
    ) -> Vec<Vec<(EntityId, f32)>> {
        let start = std::time::Instant::now();
        parent.annotate("backend", self.index.backend_name());
        parent.annotate("queries", queries.len() as u64);
        let n = queries.len();
        if n == 0 {
            self.bulk_hist.record_duration(start.elapsed());
            return Vec::new();
        }
        let grain = n.div_ceil(Self::BULK_TRACE_CHUNKS).max(1);
        let hits = emblookup_pool::Pool::global().parallel_map_traced(
            n,
            grain,
            parent,
            names::SPAN_POOL_CHUNK,
            |i| {
                let emb = self.model.embed(queries[i]);
                self.index.search(&emb, k)
            },
        );
        let elapsed = start.elapsed();
        self.bulk_hist.record_duration(elapsed);
        let per_query = u64::try_from(elapsed.as_nanos() / n as u128).unwrap_or(u64::MAX);
        self.bulk_query_hist.record_n(per_query, n as u64);
        self.bulk_queries.add(n as u64);
        hits
    }

    /// Upper bound on `pool.chunk` spans per traced bulk request; also
    /// the divisor deriving the deterministic chunk grain.
    pub const BULK_TRACE_CHUNKS: usize = 8;

    /// Fallible twin of [`EmbLookup::bulk_lookup_traced`]; see
    /// [`EmbLookup::try_lookup_with_distances`] for the containment
    /// contract.
    ///
    /// # Errors
    /// [`LookupError`] carrying the contained panic message.
    pub fn try_bulk_lookup_traced(
        &self,
        queries: &[&str],
        k: usize,
        parent: &emblookup_obs::TraceSpan,
    ) -> Result<Vec<Vec<(EntityId, f32)>>, LookupError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.bulk_lookup_traced(queries, k, parent)
        }))
        .map_err(LookupError::from_panic)
    }

    /// Fallible twin of [`EmbLookup::lookup_with_distances`]: a panic
    /// escaping the embed or search stage (e.g. a pool [`TaskPanic`]
    /// rethrown by a batched backend) is contained and surfaced as a
    /// [`LookupError`] so one poisoned query cannot take the process
    /// down — the serving layer maps it to a per-request `500`.
    ///
    /// # Errors
    /// [`LookupError`] carrying the contained panic message.
    ///
    /// [`TaskPanic`]: emblookup_pool::TaskPanic
    pub fn try_lookup_with_distances(
        &self,
        q: &str,
        k: usize,
    ) -> Result<Vec<(EntityId, f32)>, LookupError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.lookup_with_distances(q, k)
        }))
        .map_err(LookupError::from_panic)
    }

    /// Fallible twin of [`EmbLookup::bulk_lookup`]; see
    /// [`EmbLookup::try_lookup_with_distances`] for the containment
    /// contract.
    ///
    /// # Errors
    /// [`LookupError`] carrying the contained panic message.
    pub fn try_bulk_lookup(
        &self,
        queries: &[&str],
        k: usize,
    ) -> Result<Vec<Vec<(EntityId, f32)>>, LookupError> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.bulk_lookup(queries, k)
        }))
        .map_err(LookupError::from_panic)
    }
}

impl LookupService for EmbLookup {
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
        self.lookup_with_distances(q, k)
            .into_iter()
            .map(|(entity, dist)| Candidate { entity, score: -dist })
            .collect()
    }

    fn name(&self) -> &str {
        "EmbLookup"
    }

    fn lookup_batch(&self, queries: &[&str], k: usize) -> Vec<Vec<Candidate>> {
        self.bulk_lookup(queries, k)
            .into_iter()
            .map(|hits| {
                hits.into_iter()
                    .map(|(entity, dist)| Candidate { entity, score: -dist })
                    .collect()
            })
            .collect()
    }
}

/// Degree of parallelism for bulk paths. Delegates to the pool's cached
/// [`emblookup_pool::default_threads`] (`EMBLOOKUP_THREADS` override,
/// else cores minus one, at least 1) — resolved once per process instead
/// of re-querying `available_parallelism` on every call.
pub fn num_threads() -> usize {
    emblookup_pool::default_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_kg::{generate, SynthKgConfig};

    fn trained() -> (EmbLookup, emblookup_kg::SynthKg) {
        let s = generate(SynthKgConfig::tiny(8));
        let el = EmbLookup::train_on(&s.kg, EmbLookupConfig::tiny(8));
        (el, s)
    }

    #[test]
    fn exact_label_lookup_hits_owner() {
        let (el, s) = trained();
        let mut hits_at_5 = 0;
        let total = s.kg.num_entities().min(30);
        for e in s.kg.entities().take(total) {
            let hits = el.lookup(&e.label, 5);
            if hits.iter().any(|c| c.entity == e.id) {
                hits_at_5 += 1;
            }
        }
        // tiny training budget, but exact labels must mostly resolve
        assert!(
            hits_at_5 * 3 >= total * 2,
            "only {hits_at_5}/{total} exact labels resolved in top-5"
        );
    }

    #[test]
    fn lookup_returns_k_sorted_by_score() {
        let (el, s) = trained();
        let label = &s.kg.entities().next().unwrap().label;
        let hits = el.lookup(label, 7);
        assert_eq!(hits.len(), 7);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn batch_agrees_with_single() {
        let (el, s) = trained();
        let labels: Vec<&str> = s.kg.entities().take(6).map(|e| e.label.as_str()).collect();
        let batch = el.lookup_batch(&labels, 3);
        for (q, hits) in labels.iter().zip(&batch) {
            let single = el.lookup(q, 3);
            let bi: Vec<EntityId> = hits.iter().map(|c| c.entity).collect();
            let si: Vec<EntityId> = single.iter().map(|c| c.entity).collect();
            assert_eq!(bi, si);
        }
    }

    #[test]
    fn handles_garbage_queries() {
        let (el, _) = trained();
        for q in ["", "    ", "@@@###", &"z".repeat(300)] {
            let hits = el.lookup(q, 3);
            assert_eq!(hits.len(), 3); // nearest entities always exist
        }
    }

    #[test]
    fn training_report_is_recorded() {
        let (el, _) = trained();
        assert_eq!(el.report().epochs.len(), 4);
        assert!(el.report().final_loss().is_finite());
    }

    #[test]
    fn try_train_on_rejects_bad_inputs_without_panicking() {
        let s = generate(SynthKgConfig::tiny(8));
        let mut bad = EmbLookupConfig::tiny(8);
        bad.epochs = 0;
        match EmbLookup::try_train_on(&s.kg, bad) {
            Err(crate::errors::TrainError::InvalidConfig(why)) => {
                assert!(why.contains("epochs"), "{why}")
            }
            Err(other) => panic!("expected InvalidConfig, got {other:?}"),
            Ok(_) => panic!("expected InvalidConfig, got a trained service"),
        }
        let empty = emblookup_kg::KnowledgeGraph::new();
        assert!(matches!(
            EmbLookup::try_train_on(&empty, EmbLookupConfig::tiny(8)),
            Err(crate::errors::TrainError::EmptyKg)
        ));
        let mut no_triplets = EmbLookupConfig::tiny(8);
        no_triplets.triplets_per_entity = 0;
        assert!(matches!(
            EmbLookup::try_train_on(&s.kg, no_triplets),
            Err(crate::errors::TrainError::NoTriplets)
        ));
    }

    #[test]
    fn try_train_on_succeeds_and_matches_wrapper_contract() {
        let s = generate(SynthKgConfig::tiny(8));
        let el = EmbLookup::try_train_on(&s.kg, EmbLookupConfig::tiny(8)).expect("valid setup");
        assert_eq!(el.report().epochs.len(), 4);
        assert_eq!(el.lookup("anything", 2).len(), 2);
    }

    #[test]
    #[should_panic(expected = "EmbLookup::train_on")]
    fn train_on_wrapper_panics_on_invalid_config() {
        let s = generate(SynthKgConfig::tiny(8));
        let mut bad = EmbLookupConfig::tiny(8);
        bad.batch_size = 0;
        let _ = EmbLookup::train_on(&s.kg, bad);
    }

    #[test]
    fn try_lookup_matches_infallible_path() {
        let (el, s) = trained();
        let label = &s.kg.entities().next().unwrap().label;
        let fallible = el.try_lookup_with_distances(label, 5).expect("healthy index");
        let direct = el.lookup_with_distances(label, 5);
        assert_eq!(fallible, direct);
        let bulk = el.try_bulk_lookup(&[label.as_str()], 5).expect("healthy index");
        assert_eq!(bulk[0], direct);
    }

    #[test]
    fn traced_lookups_match_untraced_and_build_stage_spans() {
        use emblookup_obs::{Trace, TraceClock};
        let (el, s) = trained();
        let labels: Vec<&str> = s.kg.entities().take(10).map(|e| e.label.as_str()).collect();

        let trace = Trace::start(0xF00D, TraceClock::real());
        let root = trace.root(names::SPAN_LOOKUP_REQUEST);
        let traced = el.lookup_with_distances_traced(labels[0], 5, &root);
        assert_eq!(traced, el.lookup_with_distances(labels[0], 5));
        root.finish();
        let data = trace.snapshot();
        let span_names: Vec<&str> = data.spans.iter().map(|sp| sp.name).collect();
        assert_eq!(
            span_names,
            vec![names::SPAN_LOOKUP_REQUEST, names::SPAN_STAGE_ENCODE, names::SPAN_STAGE_SEARCH]
        );

        let bulk_trace = Trace::start(0xBEEF, TraceClock::real());
        let bulk_root = bulk_trace.root(names::SPAN_LOOKUP_REQUEST);
        let traced_bulk = el.bulk_lookup_traced(&labels, 3, &bulk_root);
        assert_eq!(traced_bulk, el.bulk_lookup(&labels, 3));
        bulk_root.finish();
        let bulk_data = bulk_trace.snapshot();
        let chunks = bulk_data
            .spans
            .iter()
            .filter(|sp| sp.name == names::SPAN_POOL_CHUNK)
            .count();
        assert!(
            (1..=EmbLookup::BULK_TRACE_CHUNKS).contains(&chunks),
            "got {chunks} chunk spans"
        );
    }
}
