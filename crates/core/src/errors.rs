//! Typed errors for the fallible service path.
//!
//! The serving layer (`emblookup-serve`) must surface bad configuration
//! as `400` and contained backend failures as per-request `500`s instead
//! of aborting the process, so the training and lookup entry points get
//! `Result` twins here (per lint rule L001: library code propagates
//! errors, panicking wrappers stay thin and documented).

use std::any::Any;
use std::fmt;

/// Why [`crate::EmbLookup::try_train_on`] refused to train.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The configuration failed [`crate::EmbLookupConfig::validate`].
    InvalidConfig(String),
    /// The knowledge graph has no entities to index.
    EmptyKg,
    /// Mining produced no triplets (e.g. `triplets_per_entity == 0`).
    NoTriplets,
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::InvalidConfig(why) => write!(f, "invalid EmbLookup config: {why}"),
            TrainError::EmptyKg => write!(f, "training on an empty knowledge graph"),
            TrainError::NoTriplets => write!(f, "mining produced no training triplets"),
        }
    }
}

impl std::error::Error for TrainError {}

/// A lookup failed instead of panicking. Carries the contained cause —
/// usually a task panic that escaped a batched backend — so the serving
/// layer can answer the one affected request with `500` while the
/// process keeps serving.
#[derive(Debug, Clone)]
pub struct LookupError {
    /// Human-readable cause.
    pub message: String,
}

impl LookupError {
    /// Builds an error from a contained panic payload (the shapes
    /// `std::panic::catch_unwind` and the pool's rethrow produce).
    pub fn from_panic(payload: Box<dyn Any + Send>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "lookup task panicked".to_owned()
        };
        LookupError { message }
    }
}

impl fmt::Display for LookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lookup failed: {}", self.message)
    }
}

impl std::error::Error for LookupError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_error_messages_are_specific() {
        let e = TrainError::InvalidConfig("epochs must be positive".into());
        assert!(e.to_string().contains("epochs"));
        assert!(TrainError::EmptyKg.to_string().contains("empty"));
        assert!(TrainError::NoTriplets.to_string().contains("triplets"));
    }

    #[test]
    fn lookup_error_extracts_panic_payloads() {
        let from_str = LookupError::from_panic(Box::new("boom"));
        assert_eq!(from_str.message, "boom");
        let from_string = LookupError::from_panic(Box::new(String::from("kaboom")));
        assert_eq!(from_string.message, "kaboom");
        let opaque = LookupError::from_panic(Box::new(42u32));
        assert!(opaque.message.contains("panicked"));
    }
}
