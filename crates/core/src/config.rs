//! Configuration of the EmbLookup pipeline.

use emblookup_ann::PqConfig;

/// How entity embeddings are compressed before indexing (§III-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Compression {
    /// No compression: full-precision flat index (the paper's EL-NC).
    None,
    /// Product quantization with `m` sub-quantizers of `ks` centroids
    /// (the paper's EL; defaults give 8 bytes per entity).
    Pq {
        /// Sub-quantizer count.
        m: usize,
        /// Centroids per sub-quantizer (≤ 256).
        ks: usize,
    },
    /// PCA to `k` dimensions, stored full precision — the weaker
    /// alternative of Figure 5.
    Pca {
        /// Retained components.
        k: usize,
    },
    /// IVF-Flat: approximate search over full-precision vectors (§III-C —
    /// EmbLookup "could accommodate either exact or approximate similarity
    /// search"). Not a compression scheme; index size is the flat one plus
    /// the coarse centroids and the posting lists.
    Ivf {
        /// Coarse clusters.
        nlist: usize,
        /// Clusters probed per query.
        nprobe: usize,
    },
    /// HNSW graph search over full-precision vectors (the nmslib-style
    /// alternative the paper's §III-C survey mentions). Index size grows
    /// by the neighbour lists.
    Hnsw {
        /// Max neighbours per node per layer.
        m: usize,
        /// Beam width at query time.
        ef_search: usize,
    },
    /// PQ-fused HNSW: graph traversal scored on PQ codes laid out in
    /// adjacency order, with an exact re-rank of the final frontier
    /// (kANNolo-style). Combines sub-linear traversal with cache-friendly
    /// compressed scoring.
    HnswPq {
        /// Max neighbours per node per layer.
        m: usize,
        /// Beam width at query time. Quantized traversal needs a wider
        /// beam than exact HNSW for the same recall.
        ef_search: usize,
        /// PQ sub-quantizer count (must divide the embedding dimension).
        pq_m: usize,
        /// Centroids per sub-quantizer (≤ 256).
        pq_ks: usize,
    },
}

impl Compression {
    /// The paper's default PQ setting (64-d → 8 bytes).
    pub fn default_pq() -> Self {
        Compression::Pq { m: 8, ks: 256 }
    }

    /// Short backend label used in metric/event fields.
    pub fn name(&self) -> &'static str {
        match self {
            Compression::None => "flat",
            Compression::Pq { .. } => "pq",
            Compression::Pca { .. } => "pca",
            Compression::Ivf { .. } => "ivf",
            Compression::Hnsw { .. } => "hnsw",
            Compression::HnswPq { .. } => "hnswpq",
        }
    }

    pub(crate) fn pq_config(m: usize, ks: usize, seed: u64) -> PqConfig {
        PqConfig { m, ks, kmeans_iters: 15, seed }
    }
}

/// Which metric-learning loss drives training. The paper uses triplet
/// loss and lists "evaluating other loss functions" as future work;
/// [`LossKind::Contrastive`] implements that extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// The paper's `max(0, d(a,p)² − d(a,n)² + margin)` (Equation 3).
    Triplet,
    /// Contrastive pull/push on both pairs of the triplet.
    Contrastive,
}

/// Hyperparameters of the EmbLookup model and training procedure (§III).
///
/// Paper defaults: 64-d embeddings, 5 conv layers of 8 kernels of size 3,
/// triplet margin, batch 128, Adam, 100 epochs (half offline, half online
/// hard mining), 100 triplets per entity. [`EmbLookupConfig::fast`] scales
/// the training budget down for the synthetic-KG reproduction while keeping
/// the architecture identical.
#[derive(Debug, Clone)]
pub struct EmbLookupConfig {
    /// Output embedding dimension (paper default 64).
    pub embedding_dim: usize,
    /// Number of convolution layers (paper: 5).
    pub conv_layers: usize,
    /// Kernels (output channels) per conv layer (paper: 8).
    pub kernels: usize,
    /// Kernel width (paper: 3).
    pub kernel_size: usize,
    /// Maximum mention length `L` for one-hot encoding.
    pub max_len: usize,
    /// Hidden width of the two-layer fusion MLP.
    pub fusion_hidden: usize,
    /// Temporal segments for the CNN max-pooling aggregation. The paper
    /// says "we use max-pooling to aggregate outputs" without fixing the
    /// granularity; 4 segments preserve coarse positional information.
    pub pool_segments: usize,
    /// Triplet-loss margin.
    pub margin: f32,
    /// Loss function (paper: triplet; contrastive is the future-work
    /// extension).
    pub loss: LossKind,
    /// Total training epochs; the first half trains offline on all
    /// triplets, the second half online on hard/semi-hard triplets only.
    pub epochs: usize,
    /// Minibatch size (paper: 128).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Triplets mined per entity (paper default 100).
    pub triplets_per_entity: usize,
    /// Compression applied to the entity index.
    pub compression: Compression,
    /// Dimension of the frozen fastText semantic features.
    pub fasttext_dim: usize,
    /// Training epochs for the frozen fastText semantic leg (cheap —
    /// SGNS with analytic gradients).
    pub fasttext_epochs: usize,
    /// L2-normalize output embeddings (standard deep-metric-learning
    /// practice; makes the triplet margin scale-free).
    pub l2_normalize: bool,
    /// Additionally index each entity under its alias embeddings — the
    /// optional accuracy/storage trade-off of §III-C ("one could obtain
    /// alternate embeddings for Q183 by evaluating the model on its
    /// aliases"). Off by default, as in the paper.
    pub index_aliases: bool,
    /// RNG seed for mining, initialization and shuffling.
    pub seed: u64,
}

impl Default for EmbLookupConfig {
    fn default() -> Self {
        EmbLookupConfig {
            embedding_dim: 64,
            conv_layers: 5,
            kernels: 8,
            kernel_size: 3,
            max_len: 32,
            fusion_hidden: 128,
            pool_segments: 4,
            margin: 0.5,
            loss: LossKind::Triplet,
            epochs: 100,
            batch_size: 128,
            lr: 1e-3,
            triplets_per_entity: 100,
            compression: Compression::default_pq(),
            fasttext_dim: 64,
            fasttext_epochs: 30,
            l2_normalize: true,
            index_aliases: false,
            seed: 0,
        }
    }
}

impl EmbLookupConfig {
    /// Paper architecture with a reduced training budget, sized for the
    /// synthetic benchmark KGs (minutes instead of GPU-hours).
    pub fn fast(seed: u64) -> Self {
        EmbLookupConfig {
            epochs: 16,
            triplets_per_entity: 25,
            lr: 2e-3,
            seed,
            ..Default::default()
        }
    }

    /// Tiny setting for unit tests (seconds).
    pub fn tiny(seed: u64) -> Self {
        EmbLookupConfig {
            embedding_dim: 16,
            conv_layers: 2,
            kernels: 6,
            max_len: 16,
            fusion_hidden: 24,
            pool_segments: 2,
            epochs: 4,
            batch_size: 16,
            lr: 5e-3,
            triplets_per_entity: 6,
            compression: Compression::None,
            fasttext_dim: 16,
            fasttext_epochs: 3,
            seed,
            ..Default::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Describes the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.embedding_dim == 0 {
            return Err("embedding_dim must be positive".into());
        }
        if self.conv_layers == 0 {
            return Err("conv_layers must be positive".into());
        }
        if self.epochs == 0 {
            return Err("epochs must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if let Compression::Pq { m, ks } = self.compression {
            if m == 0 || !self.embedding_dim.is_multiple_of(m) {
                return Err(format!(
                    "PQ m = {m} must divide embedding_dim = {}",
                    self.embedding_dim
                ));
            }
            if ks == 0 || ks > 256 {
                return Err(format!("PQ ks = {ks} out of range 1..=256"));
            }
        }
        if let Compression::Pca { k } = self.compression {
            if k == 0 || k > self.embedding_dim {
                return Err(format!(
                    "PCA k = {k} out of range 1..={}",
                    self.embedding_dim
                ));
            }
        }
        if let Compression::Ivf { nlist, nprobe } = self.compression {
            if nlist == 0 || nprobe == 0 || nprobe > nlist {
                return Err(format!("IVF nlist {nlist} / nprobe {nprobe} invalid"));
            }
        }
        if let Compression::Hnsw { m, ef_search } = self.compression {
            if m == 0 || ef_search == 0 {
                return Err(format!("HNSW m {m} / ef_search {ef_search} invalid"));
            }
        }
        if let Compression::HnswPq { m, ef_search, pq_m, pq_ks } = self.compression {
            if m == 0 || ef_search == 0 {
                return Err(format!("HNSW-PQ m {m} / ef_search {ef_search} invalid"));
            }
            if pq_m == 0 || !self.embedding_dim.is_multiple_of(pq_m) {
                return Err(format!(
                    "HNSW-PQ pq_m = {pq_m} must divide embedding_dim = {}",
                    self.embedding_dim
                ));
            }
            if pq_ks == 0 || pq_ks > 256 {
                return Err(format!("HNSW-PQ pq_ks = {pq_ks} out of range 1..=256"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EmbLookupConfig::default();
        assert_eq!(c.embedding_dim, 64);
        assert_eq!(c.conv_layers, 5);
        assert_eq!(c.kernels, 8);
        assert_eq!(c.kernel_size, 3);
        assert_eq!(c.batch_size, 128);
        assert_eq!(c.epochs, 100);
        assert_eq!(c.triplets_per_entity, 100);
        assert_eq!(c.compression, Compression::Pq { m: 8, ks: 256 });
        assert!(c.validate().is_ok());
    }

    fn with_compression(compression: Compression) -> EmbLookupConfig {
        EmbLookupConfig { compression, ..Default::default() }
    }

    #[test]
    fn validate_rejects_bad_pq() {
        assert!(with_compression(Compression::Pq { m: 7, ks: 256 }).validate().is_err());
        assert!(with_compression(Compression::Pq { m: 8, ks: 999 }).validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_pca() {
        assert!(with_compression(Compression::Pca { k: 0 }).validate().is_err());
        assert!(with_compression(Compression::Pca { k: 65 }).validate().is_err());
        assert!(with_compression(Compression::Pca { k: 8 }).validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_hnswpq() {
        let bad = [
            Compression::HnswPq { m: 0, ef_search: 48, pq_m: 8, pq_ks: 16 },
            Compression::HnswPq { m: 12, ef_search: 0, pq_m: 8, pq_ks: 16 },
            Compression::HnswPq { m: 12, ef_search: 48, pq_m: 7, pq_ks: 16 },
            Compression::HnswPq { m: 12, ef_search: 48, pq_m: 8, pq_ks: 999 },
        ];
        for c in bad {
            assert!(with_compression(c).validate().is_err(), "{c:?} accepted");
        }
        let ok = Compression::HnswPq { m: 12, ef_search: 96, pq_m: 8, pq_ks: 16 };
        assert!(with_compression(ok).validate().is_ok());
        assert_eq!(ok.name(), "hnswpq");
    }

    #[test]
    fn validate_rejects_zero_fields() {
        for f in 0..4 {
            let mut c = EmbLookupConfig::default();
            match f {
                0 => c.embedding_dim = 0,
                1 => c.conv_layers = 0,
                2 => c.epochs = 0,
                _ => c.batch_size = 0,
            }
            assert!(c.validate().is_err(), "field {f} not validated");
        }
    }

    #[test]
    fn tiny_is_valid() {
        assert!(EmbLookupConfig::tiny(0).validate().is_ok());
        assert!(EmbLookupConfig::fast(0).validate().is_ok());
    }
}
