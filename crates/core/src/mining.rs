//! Triplet mining (§III-B "Triplet Generation" and "Heuristics for Triplet
//! Mining").
//!
//! Per entity we mine `(anchor, positive, negative)` string triplets from
//! three families:
//!
//! 1. **Semantic**: the entity's aliases as positives;
//! 2. **Syntactic**: noise-injected variants of the label as positives
//!    (dropping/inserting/transposing characters, abbreviations, …);
//! 3. **Type-sharing**: labels of same-type entities as weak positives,
//!    injecting lightweight type-level semantics.
//!
//! Negatives are labels of randomly chosen (unrelated) entities.

use emblookup_kg::{EntityId, KnowledgeGraph};
use emblookup_obs::names;
use emblookup_text::{NoiseInjector, NoiseKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One training triplet of mention strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Triplet {
    /// Anchor mention (the entity's primary label).
    pub anchor: String,
    /// Positive mention (alias, perturbation, or same-type label).
    pub positive: String,
    /// Negative mention (label of an unrelated entity).
    pub negative: String,
}

/// Which mining family produced a triplet (exposed for ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripletFamily {
    /// Alias positives.
    Semantic,
    /// Noise-injected label positives.
    Syntactic,
    /// Same-type label positives.
    TypeSharing,
}

/// Mining configuration.
#[derive(Debug, Clone)]
pub struct MiningConfig {
    /// Triplet budget per entity (paper default 100).
    pub per_entity: usize,
    /// Fraction of the remaining budget (after aliases) spent on
    /// syntactic perturbations; the rest goes to type-sharing positives.
    pub syntactic_share: f64,
    /// Families enabled (ablations disable individual heuristics).
    pub families: Vec<TripletFamily>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            per_entity: 100,
            syntactic_share: 0.8,
            families: vec![
                TripletFamily::Semantic,
                TripletFamily::Syntactic,
                TripletFamily::TypeSharing,
            ],
            seed: 0,
        }
    }
}

impl MiningConfig {
    /// Default families with a custom per-entity budget.
    pub fn with_budget(per_entity: usize, seed: u64) -> Self {
        MiningConfig { per_entity, seed, ..Default::default() }
    }
}

/// Mines triplets for every entity in the graph.
///
/// Follows the paper's scheme: all aliases first (the paper notes 95% of
/// entities have < 50 synonyms, so the alias set is usually enumerated
/// completely), then the remaining budget goes to syntactic perturbations
/// and type-sharing positives.
pub fn mine_triplets(kg: &KnowledgeGraph, config: &MiningConfig) -> Vec<Triplet> {
    let span = emblookup_obs::Span::enter(names::TRAIN_MINING)
        .field("entities", kg.num_entities() as u64)
        .field("budget_per_entity", config.per_entity as u64);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let injector = NoiseInjector::with_kinds(vec![
        NoiseKind::DropChar,
        NoiseKind::InsertChar,
        NoiseKind::SubstituteChar,
        NoiseKind::TransposeChars,
        NoiseKind::DuplicateChar,
        NoiseKind::SwapTokens,
        NoiseKind::Abbreviate,
    ]);
    let n = kg.num_entities();
    let mut out = Vec::with_capacity(n * config.per_entity);
    if n == 0 {
        return out;
    }
    let use_family = |f: TripletFamily| config.families.contains(&f);

    for e in kg.entities() {
        let anchor = &e.label;
        let mut budget = config.per_entity;
        let push = |out: &mut Vec<Triplet>,
                        rng: &mut StdRng,
                        positive: String,
                        budget: &mut usize| {
            if *budget == 0 || positive.is_empty() || positive == *anchor {
                return;
            }
            let negative = sample_negative(kg, e.id, &e.types, rng);
            out.push(Triplet {
                anchor: anchor.clone(),
                positive,
                negative,
            });
            *budget -= 1;
        };

        // 1. semantic: enumerate the alias set
        if use_family(TripletFamily::Semantic) {
            for alias in &e.aliases {
                push(&mut out, &mut rng, alias.clone(), &mut budget);
            }
        }

        // 2. syntactic perturbations of the label
        if use_family(TripletFamily::Syntactic) {
            let syntactic = ((budget as f64) * config.syntactic_share).round() as usize;
            for _ in 0..syntactic {
                // 1–2 stacked corruptions: the paper's error model drops or
                // inserts "one or more" letters
                let n = rng.gen_range(1..=2usize);
                let noisy = injector.corrupt_n(anchor, n, &mut rng);
                push(&mut out, &mut rng, noisy, &mut budget);
            }
        }

        // 3. type-sharing positives: a small, fixed share — they inject
        // type-level semantics but dilute entity-level retrieval if large
        if use_family(TripletFamily::TypeSharing) {
            let mut type_budget = (config.per_entity / 10).min(budget);
            if let Some(&t) = e.types.first() {
                let peers = kg.entities_of_type(t);
                let mut attempts = 0;
                while type_budget > 0 && peers.len() >= 2 && attempts < 50 {
                    attempts += 1;
                    let peer = peers[rng.gen_range(0..peers.len())];
                    if peer == e.id {
                        continue;
                    }
                    let before = budget;
                    push(&mut out, &mut rng, kg.label(peer).to_string(), &mut budget);
                    if budget < before {
                        type_budget -= 1;
                    }
                }
            }
        }

        // 4. spend any leftover budget cycling aliases again (the alias
        // signal is the scarcest and the most valuable for semantic lookup)
        if use_family(TripletFamily::Semantic) && !e.aliases.is_empty() {
            let mut i = 0;
            let mut guard = 0;
            while budget > 0 && guard < 4 * config.per_entity {
                guard += 1;
                let alias = e.aliases[i % e.aliases.len()].clone();
                i += 1;
                push(&mut out, &mut rng, alias, &mut budget);
            }
        }
    }
    out.shuffle(&mut rng);
    emblookup_obs::global().counter(names::MINING_TRIPLETS).add(out.len() as u64);
    drop(span.field("triplets", out.len() as u64));
    out
}

/// Label of a random entity other than `exclude`. With probability 0.6 the
/// negative is drawn from the anchor's own type: same-type entities share
/// naming morphology (suffixes, token structure), making them the hard
/// negatives the embedding must learn to separate. The rest are uniform.
fn sample_negative(
    kg: &KnowledgeGraph,
    exclude: EntityId,
    types: &[emblookup_kg::TypeId],
    rng: &mut StdRng,
) -> String {
    let n = kg.num_entities() as u32;
    if n <= 1 {
        return kg.label(exclude).to_string();
    }
    if rng.gen_bool(0.6) {
        if let Some(&t) = types.first() {
            let peers = kg.entities_of_type(t);
            if peers.len() >= 2 {
                for _ in 0..8 {
                    let id = peers[rng.gen_range(0..peers.len())];
                    if id != exclude {
                        return kg.label(id).to_string();
                    }
                }
            }
        }
    }
    loop {
        let id = EntityId(rng.gen_range(0..n));
        if id != exclude {
            return kg.label(id).to_string();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_kg::{generate, SynthKgConfig};
    use emblookup_text::distance::damerau_levenshtein;

    fn kg() -> emblookup_kg::KnowledgeGraph {
        generate(SynthKgConfig::tiny(3)).kg
    }

    #[test]
    fn budget_is_respected() {
        let kg = kg();
        let cfg = MiningConfig::with_budget(10, 0);
        let triplets = mine_triplets(&kg, &cfg);
        assert!(triplets.len() <= kg.num_entities() * 10);
        assert!(triplets.len() >= kg.num_entities() * 5, "{} too few", triplets.len());
    }

    #[test]
    fn aliases_appear_as_positives() {
        let kg = kg();
        let cfg = MiningConfig::with_budget(20, 0);
        let triplets = mine_triplets(&kg, &cfg);
        let e = kg.entities().next().unwrap();
        let alias = &e.aliases[0];
        assert!(
            triplets
                .iter()
                .any(|t| t.anchor == e.label && &t.positive == alias),
            "alias {alias} never mined for {}",
            e.label
        );
    }

    #[test]
    fn syntactic_positives_are_near_the_anchor() {
        let kg = kg();
        let cfg = MiningConfig {
            families: vec![TripletFamily::Syntactic],
            ..MiningConfig::with_budget(8, 1)
        };
        let triplets = mine_triplets(&kg, &cfg);
        assert!(!triplets.is_empty());
        let near = triplets
            .iter()
            .filter(|t| damerau_levenshtein(&t.anchor, &t.positive) <= 2
                || t.positive.chars().all(|c| c.is_ascii_uppercase()))
            .count();
        // the vast majority of single corruptions are within 2 edits
        // (token swaps can be further)
        assert!(
            near * 10 >= triplets.len() * 6,
            "only {near}/{} syntactic positives near anchor",
            triplets.len()
        );
    }

    #[test]
    fn negative_differs_from_anchor() {
        let kg = kg();
        let triplets = mine_triplets(&kg, &MiningConfig::with_budget(10, 2));
        let violations = triplets.iter().filter(|t| t.negative == t.anchor).count();
        // random negatives can collide with ambiguous labels, but must be rare
        assert!(violations * 50 < triplets.len(), "{violations} anchor==negative");
    }

    #[test]
    fn disabled_families_are_absent() {
        let kg = kg();
        let cfg = MiningConfig {
            families: vec![TripletFamily::Semantic],
            ..MiningConfig::with_budget(50, 3)
        };
        let triplets = mine_triplets(&kg, &cfg);
        // every positive must be a registered alias of the anchor entity
        for t in triplets.iter().take(200) {
            let owners = kg.find_exact(&t.anchor);
            let ok = owners.iter().any(|&id| {
                kg.aliases(id).iter().any(|a| a == &t.positive)
            });
            assert!(ok, "positive {:?} is not an alias of {:?}", t.positive, t.anchor);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let kg = kg();
        let a = mine_triplets(&kg, &MiningConfig::with_budget(10, 7));
        let b = mine_triplets(&kg, &MiningConfig::with_budget(10, 7));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_kg_mines_nothing() {
        let kg = emblookup_kg::KnowledgeGraph::new();
        assert!(mine_triplets(&kg, &MiningConfig::default()).is_empty());
    }
}

// Property tests need the external `proptest` crate, unavailable in
// offline builds; enable with `--features proptest-tests` when vendored.
#[cfg(all(test, feature = "proptest-tests"))]
mod proptests {
    use super::*;
    use emblookup_kg::synth::{generate as gen_kg, SynthKgConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn triplets_never_have_empty_fields(seed in 0u64..50, budget in 1usize..20) {
            let kg = gen_kg(SynthKgConfig::tiny(seed)).kg;
            for t in mine_triplets(&kg, &MiningConfig::with_budget(budget, seed)) {
                prop_assert!(!t.anchor.is_empty());
                prop_assert!(!t.positive.is_empty());
                prop_assert!(!t.negative.is_empty());
                prop_assert_ne!(&t.anchor, &t.positive);
            }
        }

        #[test]
        fn budget_bounds_hold(seed in 0u64..50, budget in 1usize..30) {
            let kg = gen_kg(SynthKgConfig::tiny(seed)).kg;
            let triplets = mine_triplets(&kg, &MiningConfig::with_budget(budget, seed));
            prop_assert!(triplets.len() <= kg.num_entities() * budget);
        }

        #[test]
        fn anchors_are_entity_labels(seed in 0u64..20) {
            let kg = gen_kg(SynthKgConfig::tiny(seed)).kg;
            for t in mine_triplets(&kg, &MiningConfig::with_budget(5, seed)).iter().take(100) {
                prop_assert!(!kg.find_exact(&t.anchor).is_empty(), "anchor {:?} unknown", t.anchor);
            }
        }
    }
}
