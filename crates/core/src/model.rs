//! The EmbLookup embedding model (§III-B).
//!
//! Two legs with complementary strengths, fused by a two-layer MLP:
//!
//! * **Syntactic leg** — a stack of 1-D convolutions over the one-hot
//!   character matrix, max-pooled over time. CNNs with max pooling
//!   approximately preserve edit-distance bounds, giving the model its
//!   robustness to typos.
//! * **Semantic leg** — a frozen fastText-style subword embedding trained
//!   on KG labels/aliases, carrying alias- and relation-level similarity.
//!
//! `concat(cnn, fastText) → Linear → ReLU → Linear` produces the final
//! 64-d mention embedding compared under Euclidean distance.

use crate::config::EmbLookupConfig;
use emblookup_embed::{FastText, StringEncoder};
use emblookup_tensor::nn::{Conv1dLayer, Linear};
use emblookup_tensor::{Bindings, Graph, ParamStore, Tensor, Var};
use emblookup_text::{Alphabet, OneHotEncoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The trainable EmbLookup network plus its frozen semantic encoder.
pub struct EmbLookupModel {
    /// Trainable parameters (conv stack + fusion MLP).
    pub store: ParamStore,
    convs: Vec<Conv1dLayer>,
    fuse1: Linear,
    fuse2: Linear,
    onehot: OneHotEncoder,
    semantic: FastText,
    config: EmbLookupConfig,
}

impl EmbLookupModel {
    /// Builds the network with freshly initialized weights around an
    /// already-trained fastText model.
    ///
    /// # Panics
    /// Panics if `config` fails validation or the fastText dimension
    /// disagrees with `config.fasttext_dim`.
    pub fn new(semantic: FastText, config: EmbLookupConfig) -> Self {
        // lint: allow(L001) documented panic contract: config is validated up front, before any work
        config.validate().expect("invalid EmbLookup config");
        assert_eq!(
            semantic.dim(),
            config.fasttext_dim,
            "fastText dim {} != config.fasttext_dim {}",
            semantic.dim(),
            config.fasttext_dim
        );
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x5eed));
        let mut store = ParamStore::new();
        let onehot = OneHotEncoder::new(Alphabet::default_lookup(), config.max_len);

        let mut convs = Vec::with_capacity(config.conv_layers);
        let mut in_ch = onehot.rows();
        for i in 0..config.conv_layers {
            convs.push(Conv1dLayer::new(
                &mut store,
                &format!("conv{i}"),
                in_ch,
                config.kernels,
                config.kernel_size,
                &mut rng,
            ));
            in_ch = config.kernels;
        }
        let fused_in = config.kernels * config.pool_segments + config.fasttext_dim;
        let fuse1 = Linear::new(&mut store, "fuse1", fused_in, config.fusion_hidden, &mut rng);
        let fuse2 = Linear::new(
            &mut store,
            "fuse2",
            config.fusion_hidden,
            config.embedding_dim,
            &mut rng,
        );

        EmbLookupModel {
            store,
            convs,
            fuse1,
            fuse2,
            onehot,
            semantic,
            config,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &EmbLookupConfig {
        &self.config
    }

    /// Output embedding dimension.
    pub fn dim(&self) -> usize {
        self.config.embedding_dim
    }

    /// The frozen semantic encoder.
    pub fn semantic(&self) -> &FastText {
        &self.semantic
    }

    /// One-hot matrix of a mention as a `[|A|, L]` tensor.
    fn encode_chars(&self, s: &str) -> Tensor {
        let (rows, cols) = self.onehot.shape();
        Tensor::from_vec(&[rows, cols], self.onehot.encode(s))
    }

    /// Records the forward pass for one mention on a training graph and
    /// returns its embedding node.
    pub fn forward(
        &self,
        g: &mut Graph,
        b: &mut Bindings,
        s: &str,
    ) -> Var {
        // Constant leaves: neither the one-hot character planes nor the frozen
        // fastText vector ever receive gradients, so marking them `constant`
        // lets `backward` skip the first conv layer's input-gradient pass.
        let mut x = g.constant(self.encode_chars(s));
        for conv in &self.convs {
            x = conv.forward(g, b, &self.store, x);
            x = g.relu(x);
        }
        let pooled = g.max_pool_segments(x, self.config.pool_segments); // [kernels * segments]
        let sem = g.constant(Tensor::vector(&self.semantic.embed(s))); // frozen
        let cat = g.concat(&[pooled, sem]);
        let h = self.fuse1.forward(g, b, &self.store, cat);
        let h = g.relu(h);
        let out = self.fuse2.forward(g, b, &self.store, h);
        let out = g.reshape(out, &[self.config.embedding_dim]);
        if self.config.l2_normalize {
            g.l2_normalize(out)
        } else {
            out
        }
    }

    /// Graph-free embedding of a mention — the hot path used to embed
    /// every KG entity when building the index and every query at lookup.
    pub fn embed(&self, s: &str) -> Vec<f32> {
        let mut x = self.encode_chars(s);
        for conv in &self.convs {
            x = conv.infer(&self.store, &x);
            for v in x.data_mut() {
                *v = v.max(0.0);
            }
        }
        // segmented max over time per channel (mirrors the graph op)
        let (c, l) = (x.shape()[0], x.shape()[1]);
        let segments = self.config.pool_segments;
        let chunk = l / segments;
        let mut fused = Vec::with_capacity(c * segments + self.config.fasttext_dim);
        for ch in 0..c {
            let row = &x.data()[ch * l..(ch + 1) * l];
            for s in 0..segments {
                let lo = s * chunk;
                let hi = if s + 1 == segments { l } else { lo + chunk };
                fused.push(row[lo..hi].iter().copied().fold(f32::NEG_INFINITY, f32::max));
            }
        }
        fused.extend(self.semantic.embed(s));
        let cat = Tensor::vector(&fused);
        let mut h = self.fuse1.infer(&self.store, &cat);
        for v in h.data_mut() {
            *v = v.max(0.0);
        }
        let mut out = self.fuse2.infer(&self.store, &h).into_data();
        if self.config.l2_normalize {
            let norm = out.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for v in &mut out {
                    *v /= norm;
                }
            }
        }
        out
    }

    /// Embeds a batch of mentions, preserving order — the bulk path
    /// behind index building and batched queries. `threads == 1` stays
    /// on the calling thread; larger values fan out over the persistent
    /// compute pool. Each mention's embedding lands in its own output
    /// slot, so results are bit-identical across thread counts.
    pub fn embed_batch(&self, mentions: &[&str], threads: usize) -> Vec<Vec<f32>> {
        let n = mentions.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = threads.max(1).min(n);
        if threads == 1 {
            return mentions.iter().map(|m| self.embed(m)).collect();
        }
        let grain = n.div_ceil(threads * 2).max(1);
        emblookup_pool::Pool::global().parallel_map(n, grain, |i| self.embed(mentions[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmbLookupConfig;
    use emblookup_embed::{Corpus, FastTextConfig};

    fn tiny_model() -> EmbLookupModel {
        let mut corpus = Corpus::default();
        for s in ["germany europe", "deutschland europe", "tokyo asia"] {
            corpus.add_sentence(s.split(' ').map(String::from).collect());
        }
        let ft = FastText::train(
            &corpus,
            FastTextConfig { dim: 16, buckets: 1 << 10, epochs: 2, ..Default::default() },
        );
        EmbLookupModel::new(ft, EmbLookupConfig::tiny(1))
    }

    #[test]
    fn embed_has_configured_dim_and_is_finite() {
        let m = tiny_model();
        let v = m.embed("germany");
        assert_eq!(v.len(), 16);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn graph_forward_matches_infer() {
        let m = tiny_model();
        let mut g = Graph::new();
        let mut b = Bindings::new();
        let var = m.forward(&mut g, &mut b, "east berlin");
        let graph_out = g.value(var).data().to_vec();
        let infer_out = m.embed("east berlin");
        assert_eq!(graph_out.len(), infer_out.len());
        for (a, b) in graph_out.iter().zip(&infer_out) {
            assert!((a - b).abs() < 1e-4, "graph {a} vs infer {b}");
        }
    }

    #[test]
    fn handles_degenerate_inputs() {
        let m = tiny_model();
        for s in ["", " ", "日本語", &"x".repeat(500)] {
            let v = m.embed(s);
            assert_eq!(v.len(), 16);
            assert!(v.iter().all(|x| x.is_finite()), "non-finite for {s:?}");
        }
    }

    #[test]
    fn batch_matches_sequential() {
        let m = tiny_model();
        let mentions = ["germany", "tokyo", "berlin", "paris", "rome"];
        let bits = |vs: &[Vec<f32>]| -> Vec<Vec<u32>> {
            vs.iter().map(|v| v.iter().map(|x| x.to_bits()).collect()).collect()
        };
        let seq = m.embed_batch(&mentions, 1);
        for threads in [1usize, 4] {
            let par = m.embed_batch(&mentions, threads);
            assert_eq!(
                bits(&seq),
                bits(&par),
                "embed_batch not bit-identical at {threads} threads"
            );
        }
    }

    #[test]
    fn deterministic_construction() {
        let a = tiny_model();
        let b = tiny_model();
        assert_eq!(a.embed("germany"), b.embed("germany"));
    }
}

impl EmbLookupModel {
    /// Serializes the trained model: the frozen fastText leg plus every
    /// trainable weight. Reload with [`EmbLookupModel::from_bytes`] under
    /// the same configuration.
    pub fn to_bytes(&self) -> Vec<u8> {
        let ft = self.semantic.to_bytes();
        let weights = self.store.to_bytes();
        let mut out = Vec::with_capacity(16 + ft.len() + weights.len());
        out.extend_from_slice(&(ft.len() as u64).to_le_bytes());
        out.extend_from_slice(&ft);
        out.extend_from_slice(&(weights.len() as u64).to_le_bytes());
        out.extend_from_slice(&weights);
        out
    }

    /// Restores a model serialized with [`EmbLookupModel::to_bytes`].
    /// `config` must match the architecture the weights were trained with.
    ///
    /// # Errors
    /// Returns a description of the first structural mismatch.
    pub fn from_bytes(bytes: &[u8], config: EmbLookupConfig) -> Result<Self, String> {
        let read_block = |cur: &mut usize| -> Result<&[u8], String> {
            let end = *cur + 8;
            let len =
                u64::from_le_bytes(
                    bytes
                        .get(*cur..end)
                        .ok_or("truncated model buffer")?
                        .try_into()
                        .map_err(|_| "truncated model buffer")?,
                ) as usize;
            *cur = end;
            let block = bytes.get(*cur..*cur + len).ok_or("truncated model block")?;
            *cur += len;
            Ok(block)
        };
        let mut cur = 0usize;
        let ft_block = read_block(&mut cur)?;
        let semantic = FastText::from_bytes(ft_block)?;
        let weight_block = read_block(&mut cur)?.to_vec();
        let mut model = EmbLookupModel::new(semantic, config);
        model.store.load_bytes(&weight_block)?;
        Ok(model)
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;
    use crate::config::EmbLookupConfig;
    use emblookup_embed::{Corpus, FastTextConfig};

    #[test]
    fn model_round_trip_preserves_embeddings() {
        let mut corpus = Corpus::default();
        for s in ["alpha beta", "gamma delta"] {
            corpus.add_sentence(s.split(' ').map(String::from).collect());
        }
        let ft = FastText::train(
            &corpus,
            FastTextConfig { dim: 16, buckets: 1 << 10, epochs: 2, ..Default::default() },
        );
        let config = EmbLookupConfig::tiny(3);
        let model = EmbLookupModel::new(ft, config.clone());
        let bytes = model.to_bytes();
        let restored = EmbLookupModel::from_bytes(&bytes, config).unwrap();
        for s in ["alpha", "beta gamma", "xyz"] {
            assert_eq!(model.embed(s), restored.embed(s), "mismatch for {s}");
        }
    }

    #[test]
    fn model_load_rejects_wrong_architecture() {
        let mut corpus = Corpus::default();
        corpus.add_sentence(vec!["a".into(), "b".into()]);
        let ft = FastText::train(
            &corpus,
            FastTextConfig { dim: 16, buckets: 1 << 8, epochs: 1, ..Default::default() },
        );
        let config = EmbLookupConfig::tiny(4);
        let model = EmbLookupModel::new(ft, config.clone());
        let bytes = model.to_bytes();
        let mut other = config;
        other.kernels = 12; // different conv width -> shape mismatch
        assert!(EmbLookupModel::from_bytes(&bytes, other).is_err());
    }
}
