//! Hash-partitioned entity shards for scatter-gather serving.
//!
//! The serving layer's horizontal scaling unit: the entity set is split
//! at build time into `N` disjoint shards by a deterministic mix-hash of
//! the entity id, each shard backed by its own [`EntityIndex`]. A lookup
//! searches every live shard for its own top-k and merges the per-shard
//! lists with [`merge_topk`] — distances ordered by `total_cmp` with a
//! stable tie-break on entity id, so the merged result is a pure
//! function of the per-shard results regardless of gather order, pool
//! width, or which subset of shards answered (partial results under
//! shard ejection stay deterministic too).
//!
//! Shards are id-disjoint by construction, so the merge needs no
//! cross-shard deduplication; alias indexing (several rows per entity)
//! keeps all of an entity's rows on one shard because the hash keys on
//! the entity id, never the row.

use crate::config::Compression;
use crate::index::EntityIndex;
use crate::model::EmbLookupModel;
use emblookup_ann::VectorSet;
use emblookup_kg::{EntityId, KnowledgeGraph};

/// Deterministic shard assignment: a splitmix64-style finalizer over the
/// entity id, reduced mod `num_shards`. Dense sequential ids (the synth
/// KG default) spread evenly instead of striping.
pub fn shard_of(id: EntityId, num_shards: usize) -> usize {
    debug_assert!(num_shards > 0, "shard_of with zero shards");
    let mut x = (u64::from(id.0)).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % num_shards as u64) as usize
}

/// `N` id-disjoint [`EntityIndex`] shards built from one embedding pass.
pub struct ShardedIndex {
    shards: Vec<EntityIndex>,
}

impl ShardedIndex {
    /// Embeds every entity label once with `model`, partitions the rows
    /// by [`shard_of`], and builds one backend per shard.
    ///
    /// Shards whose row count is too small to train the configured
    /// compression (PQ/IVF codebooks need at least as many vectors as
    /// centroids) fall back to the exact flat backend for that shard
    /// only — partitioning never makes a shard less accurate than the
    /// unsharded index.
    ///
    /// # Panics
    /// Panics on an empty knowledge graph or `num_shards == 0`.
    pub fn build(
        model: &EmbLookupModel,
        kg: &KnowledgeGraph,
        compression: Compression,
        num_shards: usize,
        threads: usize,
    ) -> Self {
        assert!(num_shards > 0, "sharding into zero shards");
        assert!(kg.num_entities() > 0, "sharding an empty knowledge graph");
        let mut labels: Vec<&str> = kg.entities().map(|e| e.label.as_str()).collect();
        let mut ids: Vec<EntityId> = kg.entities().map(|e| e.id).collect();
        if model.config().index_aliases {
            // Alias rows ride along exactly as in `EntityIndex::build`;
            // hashing on the id keeps them on their entity's shard.
            for e in kg.entities() {
                for alias in &e.aliases {
                    labels.push(alias.as_str());
                    ids.push(e.id);
                }
            }
        }
        let embeddings = model.embed_batch(&labels, threads);
        let dim = model.dim();
        let mut shard_ids: Vec<Vec<EntityId>> = (0..num_shards).map(|_| Vec::new()).collect();
        let mut shard_vecs: Vec<VectorSet> =
            (0..num_shards).map(|_| VectorSet::new(dim)).collect();
        for (row, id) in ids.iter().enumerate() {
            let s = shard_of(*id, num_shards);
            shard_ids[s].push(*id);
            shard_vecs[s].push(&embeddings[row]);
        }
        let shards = shard_ids
            .into_iter()
            .zip(shard_vecs)
            .map(|(ids, vecs)| {
                let per_shard = fit_compression(compression, ids.len());
                EntityIndex::from_vectors(ids, vecs, per_shard)
            })
            .collect();
        ShardedIndex { shards }
    }

    /// Number of shards (fixed at build time).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's index.
    ///
    /// # Panics
    /// Panics when `shard >= num_shards()`.
    pub fn shard(&self, shard: usize) -> &EntityIndex {
        &self.shards[shard]
    }

    /// Total indexed rows across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(EntityIndex::len).sum()
    }

    /// True when no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Searches every shard sequentially and merges: the reference
    /// scatter-gather result the serving layer's pooled fan-out must
    /// reproduce byte-for-byte.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<(EntityId, f32)> {
        let per_shard: Vec<Vec<(EntityId, f32)>> =
            self.shards.iter().map(|s| s.search(query, k)).collect();
        merge_topk(&per_shard, k)
    }
}

/// Per-shard compression choice: falls back to the exact flat backend
/// when the shard is too small to train the configured codebooks.
fn fit_compression(compression: Compression, rows: usize) -> Compression {
    let min_rows = match compression {
        Compression::None | Compression::Pca { .. } => 1,
        Compression::Pq { ks, .. } => ks,
        Compression::Ivf { nlist, .. } => nlist,
        Compression::Hnsw { .. } => 2,
        Compression::HnswPq { pq_ks, .. } => pq_ks,
    };
    if rows < min_rows.max(1) {
        Compression::None
    } else {
        compression
    }
}

/// Deterministic top-k merge of per-shard hit lists: ascending distance
/// under `total_cmp`, ties broken by entity id. Shards are id-disjoint,
/// so no deduplication is needed.
pub fn merge_topk(per_shard: &[Vec<(EntityId, f32)>], k: usize) -> Vec<(EntityId, f32)> {
    let mut all: Vec<(EntityId, f32)> = per_shard.iter().flatten().copied().collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, dim: usize) -> (Vec<EntityId>, VectorSet) {
        let mut vs = VectorSet::new(dim);
        let ids = (0..n as u32).map(EntityId).collect();
        for i in 0..n {
            let v: Vec<f32> = (0..dim)
                .map(|j| ((i * 7 + j * 3) % 13) as f32 / 13.0 + i as f32 * 1e-3)
                .collect();
            vs.push(&v);
        }
        (ids, vs)
    }

    fn sharded_from(ids: &[EntityId], vs: &VectorSet, num_shards: usize) -> ShardedIndex {
        let dim = vs.dim();
        let mut shard_ids: Vec<Vec<EntityId>> = (0..num_shards).map(|_| Vec::new()).collect();
        let mut shard_vecs: Vec<VectorSet> = (0..num_shards).map(|_| VectorSet::new(dim)).collect();
        for (row, id) in ids.iter().enumerate() {
            let s = shard_of(*id, num_shards);
            shard_ids[s].push(*id);
            shard_vecs[s].push(vs.get(row));
        }
        ShardedIndex {
            shards: shard_ids
                .into_iter()
                .zip(shard_vecs)
                .map(|(ids, vecs)| EntityIndex::from_vectors(ids, vecs, Compression::None))
                .collect(),
        }
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for n in [1usize, 2, 3, 5, 8] {
            for id in 0..500u32 {
                let s = shard_of(EntityId(id), n);
                assert!(s < n);
                assert_eq!(s, shard_of(EntityId(id), n), "assignment must be pure");
            }
        }
    }

    #[test]
    fn partition_covers_every_entity_exactly_once() {
        let (ids, vs) = toy(200, 8);
        let sharded = sharded_from(&ids, &vs, 4);
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.len(), 200);
        // every shard got a meaningful slice of a 200-entity set
        for s in 0..4 {
            assert!(sharded.shard(s).len() > 10, "degenerate shard {s}");
        }
    }

    #[test]
    fn sharded_search_matches_unsharded_flat_exactly() {
        let (ids, vs) = toy(120, 8);
        let global = EntityIndex::from_vectors(ids.clone(), vs.clone(), Compression::None);
        let sharded = sharded_from(&ids, &vs, 3);
        for probe in [0usize, 17, 63, 119] {
            let q = vs.get(probe).to_vec();
            let want = global.search(&q, 10);
            let got = sharded.search(&q, 10);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0, w.0, "probe {probe}: exact merge must match flat scan");
                assert!((g.1 - w.1).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn merge_topk_orders_by_distance_then_id() {
        let a = vec![(EntityId(5), 0.5f32), (EntityId(1), 0.9)];
        let b = vec![(EntityId(3), 0.5f32), (EntityId(2), 0.1)];
        let merged = merge_topk(&[a, b], 3);
        assert_eq!(
            merged,
            vec![(EntityId(2), 0.1), (EntityId(3), 0.5), (EntityId(5), 0.5)]
        );
    }

    #[test]
    fn merge_topk_is_gather_order_independent() {
        let a = vec![(EntityId(5), 0.5f32), (EntityId(1), 0.9)];
        let b = vec![(EntityId(3), 0.5f32), (EntityId(2), 0.1)];
        let ab = merge_topk(&[a.clone(), b.clone()], 4);
        let ba = merge_topk(&[b, a], 4);
        assert_eq!(ab, ba);
    }

    #[test]
    fn small_shards_fall_back_to_flat() {
        assert_eq!(
            fit_compression(Compression::Pq { m: 8, ks: 256 }, 40),
            Compression::None
        );
        assert_eq!(
            fit_compression(Compression::Pq { m: 8, ks: 16 }, 40),
            Compression::Pq { m: 8, ks: 16 }
        );
        assert_eq!(fit_compression(Compression::None, 0), Compression::None);
    }
}
