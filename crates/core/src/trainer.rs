//! Two-phase triplet training (§III-B "Model Training Procedure").
//!
//! The first half of the epochs trains offline on every mined triplet; the
//! second half mines online, keeping only the *hard* (`d(a,n) < d(a,p)`)
//! and *semi-hard* (`d(a,p) < d(a,n) < d(a,p) + margin`) triplets whose
//! loss is non-zero, which keeps easy triplets from diluting the gradient.

use crate::mining::Triplet;
use crate::model::EmbLookupModel;
use emblookup_ann::sq_l2;
use emblookup_obs::names;
use emblookup_tensor::loss;
use emblookup_tensor::optim::{Adam, GradBuffer, Optimizer};
use emblookup_tensor::{Bindings, Graph, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Triplets per micro-batch graph. Each micro-batch builds its own tape
/// (possibly on the compute pool) and its gradients merge in index order
/// before a single optimizer step, so the size is a fixed constant — never
/// derived from the thread count — to keep training bit-identical across
/// `EMBLOOKUP_THREADS` settings.
const MICRO_BATCH: usize = 32;

/// Per-epoch training statistics.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch number (0-based).
    pub epoch: usize,
    /// Mean triplet loss over the triplets trained this epoch.
    pub mean_loss: f32,
    /// Number of triplets trained (shrinks in the online phase).
    pub active_triplets: usize,
    /// True for the online hard-mining phase.
    pub online_phase: bool,
}

/// Full training report.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// Mean loss of the final epoch, or `f32::NAN` before training.
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map(|e| e.mean_loss).unwrap_or(f32::NAN)
    }
}

/// Trains `model` in place on `triplets` according to its config.
///
/// # Panics
/// Panics when `triplets` is empty.
pub fn train(model: &mut EmbLookupModel, triplets: &[Triplet]) -> TrainReport {
    assert!(!triplets.is_empty(), "training without triplets");
    let config = model.config().clone();
    let _span = emblookup_obs::Span::enter(names::TRAIN_TRIPLET)
        .field("triplets", triplets.len() as u64)
        .field("epochs", config.epochs as u64);
    let reg = emblookup_obs::global();
    let epoch_hist = reg.histogram(names::TRAIN_EPOCH_DURATION);
    let epoch_counter = reg.counter(names::TRAIN_EPOCHS);
    // offset keeps the trainer's RNG stream distinct from the miner's
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x7EA11));
    let mut optimizer = Adam::new(config.lr);
    let mut report = TrainReport::default();
    let offline_epochs = config.epochs / 2 + config.epochs % 2;

    let observe_epoch = |stats: &EpochStats, start: std::time::Instant| {
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        epoch_hist.record(ns);
        epoch_counter.inc();
        emblookup_obs::event(
            "train.epoch",
            &[
                ("epoch", (stats.epoch as u64).into()),
                ("mean_loss", f64::from(stats.mean_loss).into()),
                ("active_triplets", (stats.active_triplets as u64).into()),
                ("online", stats.online_phase.into()),
            ],
        );
    };

    let mut order: Vec<usize> = (0..triplets.len()).collect();
    for epoch in 0..config.epochs {
        let epoch_start = std::time::Instant::now();
        let online = epoch >= offline_epochs;
        let active: Vec<usize> = if online {
            select_hard(model, triplets, config.margin)
        } else {
            order.shuffle(&mut rng);
            order.clone()
        };
        if active.is_empty() {
            // every triplet is easy — converged
            let stats = EpochStats {
                epoch,
                mean_loss: 0.0,
                active_triplets: 0,
                online_phase: online,
            };
            observe_epoch(&stats, epoch_start);
            report.epochs.push(stats);
            continue;
        }
        let mut epoch_loss = 0.0f64;
        for chunk in active.chunks(config.batch_size) {
            let micros: Vec<&[usize]> = chunk.chunks(MICRO_BATCH).collect();
            let shared: &EmbLookupModel = model;
            let outs: Vec<(f64, GradBuffer)> = emblookup_pool::Pool::global()
                .parallel_map(micros.len(), 1, |mi| {
                    run_micro_batch(shared, triplets, micros[mi])
                });
            // summed micro-batch gradients, folded in index order then
            // scaled, reproduce the old single-graph batch mean exactly
            let mut merged = GradBuffer::new();
            for (loss_sum, grads) in &outs {
                epoch_loss += loss_sum;
                merged.merge(grads);
            }
            merged.scale(1.0 / chunk.len() as f32);
            optimizer.step_grads(&mut model.store, &merged);
        }
        let stats = EpochStats {
            epoch,
            mean_loss: (epoch_loss / active.len() as f64) as f32,
            active_triplets: active.len(),
            online_phase: online,
        };
        observe_epoch(&stats, epoch_start);
        report.epochs.push(stats);
    }
    report
}

/// Records one mention's forward pass, reusing the graph nodes of an
/// earlier identical mention in the same micro-batch. Triplet mining
/// repeats anchors heavily (`triplets_per_entity` triplets share one
/// anchor), so sharing the subgraph removes most forward legs; gradients
/// still accumulate correctly because backward sums over every fan-out of
/// the shared node.
fn memo_forward<'t>(
    model: &EmbLookupModel,
    g: &mut Graph,
    b: &mut Bindings,
    memo: &mut HashMap<&'t str, Var>,
    s: &'t str,
) -> Var {
    if let Some(v) = memo.get(s) {
        return *v;
    }
    let v = model.forward(g, b, s);
    memo.insert(s, v);
    v
}

/// Builds one micro-batch's graph, backpropagates its *summed* loss, and
/// returns that sum together with the collected gradients. Dividing the
/// merged gradients by the full batch length afterwards recovers the
/// batch-mean update.
fn run_micro_batch(
    model: &EmbLookupModel,
    triplets: &[Triplet],
    micro: &[usize],
) -> (f64, GradBuffer) {
    let config = model.config();
    let mut g = Graph::new();
    let mut b = Bindings::new();
    let mut memo: HashMap<&str, Var> = HashMap::new();
    let mut total: Option<Var> = None;
    for &i in micro {
        let t = &triplets[i];
        let ea = memo_forward(model, &mut g, &mut b, &mut memo, &t.anchor);
        let ep = memo_forward(model, &mut g, &mut b, &mut memo, &t.positive);
        let en = memo_forward(model, &mut g, &mut b, &mut memo, &t.negative);
        let l = match config.loss {
            crate::config::LossKind::Triplet => {
                loss::triplet(&mut g, ea, ep, en, config.margin)
            }
            crate::config::LossKind::Contrastive => {
                loss::contrastive_triplet(&mut g, ea, ep, en, config.margin)
            }
        };
        total = Some(match total {
            Some(acc) => g.add(acc, l),
            None => l,
        });
    }
    let Some(total) = total else {
        return (0.0, GradBuffer::new());
    };
    g.backward(total);
    (f64::from(g.value(total).item()), GradBuffer::from_graph(&g, &b))
}

/// Indices of triplets with non-zero loss under the current model — the
/// hard and semi-hard set of the paper's online phase. Embeddings are
/// computed once per distinct mention through the fast inference path,
/// fanned out over the compute pool.
fn select_hard(model: &EmbLookupModel, triplets: &[Triplet], margin: f32) -> Vec<usize> {
    // embed each distinct mention once; keys borrow from `triplets`
    let mut distinct: Vec<&str> = Vec::new();
    let mut cache: HashMap<&str, Vec<f32>> = HashMap::new();
    for t in triplets {
        for s in [t.anchor.as_str(), t.positive.as_str(), t.negative.as_str()] {
            if !cache.contains_key(s) {
                cache.insert(s, Vec::new());
                distinct.push(s);
            }
        }
    }
    let embedded = model.embed_batch(&distinct, emblookup_pool::default_threads());
    for (s, e) in distinct.into_iter().zip(embedded) {
        cache.insert(s, e);
    }
    triplets
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            let a = &cache[t.anchor.as_str()];
            let p = &cache[t.positive.as_str()];
            let n = &cache[t.negative.as_str()];
            let d_ap = sq_l2(a, p);
            let d_an = sq_l2(a, n);
            d_an < d_ap + margin // hard or semi-hard
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmbLookupConfig;
    use crate::mining::{mine_triplets, MiningConfig};
    use emblookup_embed::{Corpus, FastText, FastTextConfig};
    use emblookup_kg::{generate, SynthKgConfig};

    fn setup() -> (EmbLookupModel, Vec<Triplet>) {
        let s = generate(SynthKgConfig::tiny(5));
        let corpus = Corpus::from_kg(&s.kg);
        let ft = FastText::train(
            &corpus,
            FastTextConfig { dim: 16, buckets: 1 << 11, epochs: 2, ..Default::default() },
        );
        let model = EmbLookupModel::new(ft, EmbLookupConfig::tiny(5));
        let triplets = mine_triplets(&s.kg, &MiningConfig::with_budget(6, 5));
        (model, triplets)
    }

    #[test]
    fn loss_decreases_over_training() {
        let (mut model, triplets) = setup();
        let report = train(&mut model, &triplets);
        assert_eq!(report.epochs.len(), 4);
        let first = report.epochs[0].mean_loss;
        let last = report.final_loss();
        assert!(
            last < first,
            "loss did not decrease: {first} -> {last}"
        );
    }

    #[test]
    fn online_phase_shrinks_active_set() {
        let (mut model, triplets) = setup();
        let report = train(&mut model, &triplets);
        let offline = &report.epochs[0];
        let online = report.epochs.iter().find(|e| e.online_phase).unwrap();
        assert!(!offline.online_phase);
        assert!(online.active_triplets <= triplets.len());
    }

    #[test]
    fn training_moves_alias_closer_than_random() {
        let (mut model, triplets) = setup();
        train(&mut model, &triplets);
        // pick a mined semantic triplet and check the margin direction
        let t = &triplets[0];
        let a = model.embed(&t.anchor);
        let p = model.embed(&t.positive);
        let n = model.embed(&t.negative);
        // not guaranteed per-triplet, but statistically over several:
        let mut wins = 0;
        let mut total = 0;
        for t in triplets.iter().take(40) {
            let a = model.embed(&t.anchor);
            let p = model.embed(&t.positive);
            let n = model.embed(&t.negative);
            if sq_l2(&a, &p) < sq_l2(&a, &n) {
                wins += 1;
            }
            total += 1;
        }
        let _ = (a, p, n);
        assert!(
            wins * 3 >= total * 2,
            "only {wins}/{total} triplets satisfied after training"
        );
    }

    #[test]
    #[should_panic(expected = "without triplets")]
    fn empty_triplets_panics() {
        let (mut model, _) = setup();
        train(&mut model, &[]);
    }
}
