//! # emblookup-core
//!
//! The paper's primary contribution: **EmbLookup**, an embedding-based
//! entity-lookup service for knowledge graphs (Abuoda et al., ICDE 2022).
//!
//! The pipeline: mentions are embedded by a CNN (syntactic leg) fused with
//! a frozen fastText model (semantic leg) through a two-layer MLP, trained
//! with triplet loss on mined `(anchor, positive, negative)` string
//! triplets — aliases, synthetic typos, and same-type labels as positives.
//! Entity embeddings are optionally compressed with product quantization
//! (256 B → 8 B per entity) and served from a nearest-neighbour index.
//!
//! ```no_run
//! use emblookup_core::{EmbLookup, EmbLookupConfig};
//! use emblookup_kg::{generate, LookupService, SynthKgConfig};
//!
//! let synth = generate(SynthKgConfig::small(42));
//! let service = EmbLookup::train_on(&synth.kg, EmbLookupConfig::fast(42));
//! let hits = service.lookup("germany", 10);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod encoder_index;
pub mod errors;
pub mod eval;
pub mod index;
pub mod mining;
pub mod model;
pub mod service;
pub mod shards;
pub mod trainer;

pub use config::{Compression, EmbLookupConfig, LossKind};
pub use encoder_index::EncoderIndex;
pub use errors::{LookupError, TrainError};
pub use eval::Workload;
pub use index::EntityIndex;
pub use mining::{mine_triplets, MiningConfig, Triplet, TripletFamily};
pub use model::EmbLookupModel;
pub use service::{num_threads, EmbLookup};
pub use shards::{merge_topk, shard_of, ShardedIndex};
pub use trainer::{train, EpochStats, TrainReport};
