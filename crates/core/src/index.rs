//! The entity embedding index (§III-C/D).
//!
//! Every entity's primary label is embedded once; lookups embed the query
//! and retrieve nearest neighbours from either the exact flat index
//! (EL-NC), a product-quantized index (EL, 8 B/entity at defaults), or a
//! PCA-compressed flat index (the Figure 5 alternative).

use crate::config::Compression;
use crate::model::EmbLookupModel;
use emblookup_ann::{
    FlatIndex, HnswConfig, HnswIndex, HnswPqConfig, HnswPqIndex, IvfConfig, IvfIndex, Neighbor,
    Pca, PqIndex, VectorSet,
};
use emblookup_kg::{EntityId, KnowledgeGraph};
use emblookup_obs::names;

/// Index over entity embeddings with one of the supported backends.
pub struct EntityIndex {
    ids: Vec<EntityId>,
    backend: Backend,
    dim: usize,
    /// True when several rows map to one entity (alias indexing): results
    /// must then be deduplicated by entity.
    multi_row: bool,
}

enum Backend {
    Flat(FlatIndex),
    Pq(PqIndex),
    Pca { pca: Pca, flat: FlatIndex },
    Ivf(IvfIndex),
    Hnsw(HnswIndex),
    HnswPq(HnswPqIndex),
}

impl EntityIndex {
    /// Embeds every entity label with `model` and builds the index.
    ///
    /// `threads` parallelizes the bulk embedding step.
    ///
    /// # Panics
    /// Panics on an empty knowledge graph, or when a PQ configuration is
    /// incompatible with the model dimension.
    pub fn build(
        model: &EmbLookupModel,
        kg: &KnowledgeGraph,
        compression: Compression,
        threads: usize,
    ) -> Self {
        assert!(kg.num_entities() > 0, "indexing an empty knowledge graph");
        let span = emblookup_obs::Span::enter(names::INDEX_BUILD)
            .field("entities", kg.num_entities() as u64)
            .field("backend", compression.name());
        let mut labels: Vec<&str> = kg.entities().map(|e| e.label.as_str()).collect();
        let mut ids: Vec<EntityId> = kg.entities().map(|e| e.id).collect();
        if model.config().index_aliases {
            // §III-C option: one extra index row per alias, mapping back to
            // the same entity id (higher storage, higher alias recall)
            for e in kg.entities() {
                for alias in &e.aliases {
                    labels.push(alias.as_str());
                    ids.push(e.id);
                }
            }
        }
        let embeddings = model.embed_batch(&labels, threads);
        let dim = model.dim();
        let mut vectors = VectorSet::new(dim);
        for v in &embeddings {
            vectors.push(v);
        }
        let index = Self::from_vectors(ids, vectors, compression);
        emblookup_obs::global()
            .gauge(names::INDEX_ENTITIES)
            .set(index.len() as f64);
        emblookup_obs::global()
            .gauge(names::INDEX_NBYTES)
            .set(index.nbytes() as f64);
        drop(span);
        index
    }

    /// Builds the index from precomputed embeddings (used by the benches
    /// to reuse one embedding pass across several compression settings).
    pub fn from_vectors(ids: Vec<EntityId>, vectors: VectorSet, compression: Compression) -> Self {
        assert_eq!(ids.len(), vectors.len(), "id/vector count mismatch");
        let dim = vectors.dim();
        let multi_row = {
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.windows(2).any(|w| w[0] == w[1])
        };
        let backend = match compression {
            Compression::None => Backend::Flat(FlatIndex::new(vectors)),
            Compression::Pq { m, ks } => {
                let cfg = Compression::pq_config(m, ks, 0xC0DE);
                Backend::Pq(PqIndex::build(&vectors, cfg))
            }
            Compression::Pca { k } => {
                let pca = Pca::fit(&vectors, k, 0xC0DE);
                let projected = pca.project_set(&vectors);
                Backend::Pca { pca, flat: FlatIndex::new(projected) }
            }
            Compression::Ivf { nlist, nprobe } => Backend::Ivf(IvfIndex::build(
                vectors,
                IvfConfig { nlist, nprobe, kmeans_iters: 15, seed: 0xC0DE },
            )),
            Compression::Hnsw { m, ef_search } => Backend::Hnsw(HnswIndex::build(
                vectors,
                HnswConfig { m, ef_search, ef_construction: ef_search.max(2 * m), seed: 0xC0DE },
            )),
            Compression::HnswPq { m, ef_search, pq_m, pq_ks } => {
                Backend::HnswPq(HnswPqIndex::build(
                    &vectors,
                    HnswPqConfig {
                        hnsw: HnswConfig {
                            m,
                            ef_search,
                            ef_construction: ef_search.max(2 * m),
                            seed: 0xC0DE,
                        },
                        pq: Compression::pq_config(pq_m, pq_ks, 0xC0DE),
                    },
                ))
            }
        };
        EntityIndex { ids, backend, dim, multi_row }
    }

    /// Number of indexed entities.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no entities are indexed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Embedding dimension expected by [`EntityIndex::search`].
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Byte size of the stored index, matching the storage comparisons of
    /// the evaluation. Every backend reports its true footprint: payload
    /// vectors or codes plus whatever auxiliary structure queries need
    /// (codebooks, projection matrices, centroids, posting or neighbour
    /// lists).
    pub fn nbytes(&self) -> usize {
        match &self.backend {
            Backend::Flat(f) => f.nbytes(),
            Backend::Pq(p) => p.nbytes(),
            // projected vectors plus the mean/component rows needed to
            // project queries
            Backend::Pca { pca, flat } => flat.nbytes() + pca.nbytes(),
            Backend::Ivf(i) => i.nbytes(),
            Backend::Hnsw(h) => h.nbytes(),
            Backend::HnswPq(i) => i.nbytes(),
        }
    }

    /// The entity id stored at an internal index position.
    pub fn entity_at(&self, position: usize) -> EntityId {
        self.ids[position]
    }

    /// Stable lower-case name of the active ANN backend.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            Backend::Flat(_) => "flat",
            Backend::Pq(_) => "pq",
            Backend::Pca { .. } => "pca",
            Backend::Ivf(_) => "ivf",
            Backend::Hnsw(_) => "hnsw",
            Backend::HnswPq(_) => "hnswpq",
        }
    }

    /// `k` nearest entities to a query embedding, ascending by distance.
    /// With alias indexing, an entity reachable through several rows is
    /// returned once at its best distance.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<(EntityId, f32)> {
        self.search_inner(query, k, None)
    }

    /// Traced twin of [`EntityIndex::search`]: identical results, with
    /// the backend's `backend`/`visited` annotations recorded on `span`.
    pub fn search_traced(
        &self,
        query: &[f32],
        k: usize,
        span: &emblookup_obs::TraceSpan,
    ) -> Vec<(EntityId, f32)> {
        self.search_inner(query, k, Some(span))
    }

    fn search_inner(
        &self,
        query: &[f32],
        k: usize,
        span: Option<&emblookup_obs::TraceSpan>,
    ) -> Vec<(EntityId, f32)> {
        let fetch = if self.multi_row { k.saturating_mul(3) } else { k };
        let raw: Vec<Neighbor> = match (&self.backend, span) {
            (Backend::Flat(f), None) => f.search(query, fetch),
            (Backend::Flat(f), Some(s)) => f.search_traced(query, fetch, s),
            (Backend::Pq(p), None) => p.search(query, fetch),
            (Backend::Pq(p), Some(s)) => p.search_traced(query, fetch, s),
            (Backend::Pca { pca, flat }, None) => flat.search(&pca.project(query), fetch),
            (Backend::Pca { pca, flat }, Some(s)) => {
                // annotate as the composite backend, not the inner flat
                s.annotate("backend", "pca");
                s.annotate("visited", flat.len() as u64);
                flat.search(&pca.project(query), fetch)
            }
            (Backend::Ivf(i), None) => i.search(query, fetch),
            (Backend::Ivf(i), Some(s)) => i.search_traced(query, fetch, s),
            (Backend::Hnsw(h), None) => h.search(query, fetch),
            (Backend::Hnsw(h), Some(s)) => h.search_traced(query, fetch, s),
            (Backend::HnswPq(i), None) => i.search(query, fetch),
            (Backend::HnswPq(i), Some(s)) => i.search_traced(query, fetch, s),
        };
        let mapped = raw.into_iter().map(|n| (self.ids[n.index], n.dist));
        if !self.multi_row {
            return mapped.collect();
        }
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(k);
        for (id, d) in mapped {
            if seen.insert(id) {
                out.push((id, d));
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// Batch search across `threads` threads.
    pub fn search_batch(
        &self,
        queries: &VectorSet,
        k: usize,
        threads: usize,
    ) -> Vec<Vec<(EntityId, f32)>> {
        if self.multi_row {
            // alias-indexed path needs per-query dedup; reuse `search`
            return (0..queries.len())
                .map(|i| self.search(queries.get(i), k))
                .collect();
        }
        let raw = match &self.backend {
            Backend::Flat(f) => f.search_batch(queries, k, threads),
            Backend::Pq(p) => p.search_batch(queries, k, threads),
            Backend::Pca { pca, flat } => {
                let projected = pca.project_set(queries);
                flat.search_batch(&projected, k, threads)
            }
            Backend::Ivf(i) => i.search_batch(queries, k, threads),
            Backend::Hnsw(h) => h.search_batch(queries, k, threads),
            Backend::HnswPq(i) => i.search_batch(queries, k, threads),
        };
        raw.into_iter()
            .map(|hits| {
                hits.into_iter()
                    .map(|n| (self.ids[n.index], n.dist))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_vectors(n: usize, dim: usize) -> (Vec<EntityId>, VectorSet) {
        let mut vs = VectorSet::new(dim);
        let ids = (0..n as u32).map(EntityId).collect();
        for i in 0..n {
            // unique per-vector offset prevents accidental duplicates
            let v: Vec<f32> = (0..dim)
                .map(|j| ((i * 7 + j * 3) % 13) as f32 / 13.0 + i as f32 * 1e-3)
                .collect();
            vs.push(&v);
        }
        (ids, vs)
    }

    #[test]
    fn flat_index_returns_self_first() {
        let (ids, vs) = toy_vectors(50, 8);
        let q = vs.get(10).to_vec();
        let idx = EntityIndex::from_vectors(ids, vs, Compression::None);
        let hits = idx.search(&q, 3);
        assert_eq!(hits[0].0, EntityId(10));
        assert_eq!(hits[0].1, 0.0);
    }

    #[test]
    fn pq_index_is_much_smaller() {
        let (ids, vs) = toy_vectors(300, 64);
        let flat = EntityIndex::from_vectors(ids.clone(), vs.clone(), Compression::None);
        let pq = EntityIndex::from_vectors(ids, vs, Compression::Pq { m: 8, ks: 16 });
        assert_eq!(flat.nbytes(), 300 * 256);
        assert!(pq.nbytes() < flat.nbytes() / 4, "pq {} vs flat {}", pq.nbytes(), flat.nbytes());
    }

    #[test]
    fn pca_index_projects_queries() {
        let (ids, vs) = toy_vectors(80, 16);
        let q = vs.get(5).to_vec();
        let idx = EntityIndex::from_vectors(ids, vs, Compression::Pca { k: 4 });
        let hits = idx.search(&q, 5);
        assert_eq!(hits.len(), 5);
        // the query projects exactly onto its own stored projection
        assert!(hits[0].1 < 1e-6, "distance {}", hits[0].1);
        assert!(hits.iter().any(|&(id, _)| id == EntityId(5)));
    }

    #[test]
    fn batch_matches_single() {
        let (ids, vs) = toy_vectors(60, 8);
        let idx = EntityIndex::from_vectors(ids, vs.clone(), Compression::None);
        let mut queries = VectorSet::new(8);
        for i in 0..9 {
            queries.push(vs.get(i * 5));
        }
        let batch = idx.search_batch(&queries, 4, 3);
        for (i, hits) in batch.iter().enumerate() {
            let single = idx.search(queries.get(i), 4);
            assert_eq!(*hits, single);
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_ids_panic() {
        let (_, vs) = toy_vectors(10, 4);
        let _ = EntityIndex::from_vectors(vec![EntityId(0)], vs, Compression::None);
    }

    #[test]
    fn traced_search_matches_untraced_and_annotates_every_backend() {
        use emblookup_obs::{AnnoValue, Trace, TraceClock};
        let compressions = [
            Compression::None,
            Compression::Pq { m: 4, ks: 16 },
            Compression::Pca { k: 4 },
            Compression::Ivf { nlist: 4, nprobe: 4 },
            Compression::Hnsw { m: 8, ef_search: 32 },
            Compression::HnswPq { m: 8, ef_search: 64, pq_m: 4, pq_ks: 16 },
        ];
        for compression in compressions {
            let (ids, vs) = toy_vectors(120, 8);
            let q = vs.get(11).to_vec();
            let idx = EntityIndex::from_vectors(ids, vs, compression);
            let trace = Trace::start(1, TraceClock::real());
            let root = trace.root(emblookup_obs::names::SPAN_STAGE_SEARCH);
            let traced = idx.search_traced(&q, 5, &root);
            assert_eq!(traced, idx.search(&q, 5), "backend {}", idx.backend_name());
            root.finish();
            let data = trace.snapshot();
            assert_eq!(
                data.root_annotation("backend"),
                Some(AnnoValue::Str(idx.backend_name())),
            );
            assert!(
                matches!(data.root_annotation("visited"), Some(AnnoValue::U64(v)) if v > 0),
                "backend {} must report visited > 0",
                idx.backend_name()
            );
        }
    }
}

#[cfg(test)]
mod alias_index_tests {
    use super::*;

    #[test]
    fn duplicate_ids_are_deduped_in_search() {
        let mut vs = VectorSet::new(2);
        // entity 0 has two rows (label + alias), entity 1 has one
        vs.push(&[0.0, 0.0]);
        vs.push(&[0.1, 0.0]);
        vs.push(&[5.0, 5.0]);
        let ids = vec![EntityId(0), EntityId(0), EntityId(1)];
        let idx = EntityIndex::from_vectors(ids, vs, Compression::None);
        let hits = idx.search(&[0.05, 0.0], 3);
        // entity 0 appears once, at its best distance
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, EntityId(0));
        assert_eq!(hits[1].0, EntityId(1));
        let entities: Vec<EntityId> = hits.iter().map(|&(e, _)| e).collect();
        let mut dedup = entities.clone();
        dedup.dedup();
        assert_eq!(entities, dedup);
    }

    #[test]
    fn batch_dedups_too() {
        let mut vs = VectorSet::new(2);
        vs.push(&[0.0, 0.0]);
        vs.push(&[0.1, 0.0]);
        vs.push(&[5.0, 5.0]);
        let ids = vec![EntityId(0), EntityId(0), EntityId(1)];
        let idx = EntityIndex::from_vectors(ids, vs, Compression::None);
        let mut queries = VectorSet::new(2);
        queries.push(&[0.0, 0.0]);
        let batch = idx.search_batch(&queries, 3, 2);
        assert_eq!(batch[0].len(), 2);
    }
}

#[cfg(test)]
mod ivf_backend_tests {
    use super::*;

    #[test]
    fn ivf_backend_finds_exact_matches() {
        let mut vs = VectorSet::new(4);
        let mut ids = Vec::new();
        for i in 0..100u32 {
            let f = i as f32;
            vs.push(&[f, -f, f * 0.5, 1.0]);
            ids.push(EntityId(i));
        }
        let idx = EntityIndex::from_vectors(
            ids,
            vs.clone(),
            Compression::Ivf { nlist: 8, nprobe: 8 },
        );
        // probing every list is exact
        let hits = idx.search(vs.get(42), 1);
        assert_eq!(hits[0].0, EntityId(42));
        assert_eq!(hits[0].1, 0.0);
    }

    #[test]
    fn ivf_nbytes_is_flat_plus_overhead() {
        let mut vs = VectorSet::new(4);
        let ids: Vec<EntityId> = (0..50u32).map(EntityId).collect();
        for i in 0..50 {
            vs.push(&[i as f32, 0.0, 0.0, 0.0]);
        }
        let flat = EntityIndex::from_vectors(ids.clone(), vs.clone(), Compression::None);
        let ivf = EntityIndex::from_vectors(ids, vs, Compression::Ivf { nlist: 4, nprobe: 2 });
        // full vectors + 4 centroids of dim 4 + one u32 posting per row
        let f32s = std::mem::size_of::<f32>();
        assert_eq!(ivf.nbytes(), flat.nbytes() + 4 * 4 * f32s + 50 * std::mem::size_of::<u32>());
    }
}

#[cfg(test)]
mod hnswpq_backend_tests {
    use super::*;

    #[test]
    fn hnswpq_backend_finds_exact_matches() {
        let mut vs = VectorSet::new(4);
        let mut ids = Vec::new();
        for i in 0..200u32 {
            let f = i as f32;
            vs.push(&[f.sin(), f.cos(), f * 0.01, 1.0]);
            ids.push(EntityId(i));
        }
        let idx = EntityIndex::from_vectors(
            ids,
            vs.clone(),
            Compression::HnswPq { m: 8, ef_search: 64, pq_m: 4, pq_ks: 16 },
        );
        // the exact re-rank tail restores true distances for the frontier
        let hits = idx.search(vs.get(17), 1);
        assert_eq!(hits[0].0, EntityId(17));
        assert_eq!(hits[0].1, 0.0);
    }

    #[test]
    fn hnswpq_nbytes_reports_codes_not_just_vectors() {
        let mut vs = VectorSet::new(8);
        let ids: Vec<EntityId> = (0..300u32).map(EntityId).collect();
        for i in 0..300 {
            let v: Vec<f32> = (0..8).map(|j| ((i * 5 + j) % 17) as f32).collect();
            vs.push(&v);
        }
        let flat = EntityIndex::from_vectors(ids.clone(), vs.clone(), Compression::None);
        let hp = EntityIndex::from_vectors(
            ids,
            vs,
            Compression::HnswPq { m: 8, ef_search: 48, pq_m: 4, pq_ks: 16 },
        );
        // raw vectors are retained for the re-rank, so the footprint must
        // exceed flat by the traversal structures (codes + graph + map)
        assert!(hp.nbytes() > flat.nbytes(), "hp {} vs flat {}", hp.nbytes(), flat.nbytes());
    }
}

#[cfg(test)]
mod hnsw_backend_tests {
    use super::*;

    #[test]
    fn hnsw_backend_finds_exact_matches() {
        let mut vs = VectorSet::new(4);
        let mut ids = Vec::new();
        for i in 0..200u32 {
            let f = i as f32;
            vs.push(&[f.sin(), f.cos(), f * 0.01, 1.0]);
            ids.push(EntityId(i));
        }
        let idx = EntityIndex::from_vectors(
            ids,
            vs.clone(),
            Compression::Hnsw { m: 8, ef_search: 32 },
        );
        let hits = idx.search(vs.get(17), 1);
        assert_eq!(hits[0].0, EntityId(17));
        assert_eq!(hits[0].1, 0.0);
    }
}
