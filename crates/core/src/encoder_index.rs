//! A lookup service backed by an arbitrary [`StringEncoder`] — the harness
//! of Table VII, which swaps the embedding algorithm (word2vec, fastText,
//! BERT-mini, LSTM, EmbLookup) under an otherwise identical pipeline.
//!
//! Lives in `emblookup-core` (not `emblookup-embed`) because it composes
//! an encoder with an ANN index: the layer DAG (lint rule L005) keeps
//! `embed` below `ann`, and only `core` may see both.

use emblookup_ann::{FlatIndex, VectorSet};
use emblookup_embed::StringEncoder;
use emblookup_kg::{Candidate, EntityId, KnowledgeGraph, LookupService};

/// Flat nearest-neighbour index over entity-label embeddings produced by
/// any [`StringEncoder`].
pub struct EncoderIndex<E: StringEncoder> {
    encoder: E,
    ids: Vec<EntityId>,
    index: FlatIndex,
    name: String,
}

impl<E: StringEncoder> EncoderIndex<E> {
    /// Embeds every entity label of `kg` with `encoder` and indexes them.
    ///
    /// # Panics
    /// Panics on an empty knowledge graph.
    pub fn build(encoder: E, kg: &KnowledgeGraph) -> Self {
        assert!(kg.num_entities() > 0, "indexing an empty knowledge graph");
        let name = encoder.name().to_string();
        let mut vectors = VectorSet::new(encoder.dim());
        let mut ids = Vec::with_capacity(kg.num_entities());
        for e in kg.entities() {
            vectors.push(&encoder.embed(&e.label));
            ids.push(e.id);
        }
        EncoderIndex {
            encoder,
            ids,
            index: FlatIndex::new(vectors),
            name,
        }
    }

    /// The wrapped encoder.
    pub fn encoder(&self) -> &E {
        &self.encoder
    }
}

impl<E: StringEncoder + Sync> LookupService for EncoderIndex<E> {
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
        let emb = self.encoder.embed(q);
        self.index
            .search(&emb, k)
            .into_iter()
            .map(|n| Candidate {
                entity: self.ids[n.index],
                score: -n.dist,
            })
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_embed::{Corpus, FastText, FastTextConfig};
    use emblookup_kg::{generate, SynthKgConfig};

    #[test]
    fn fasttext_index_resolves_exact_labels() {
        let s = generate(SynthKgConfig::tiny(7));
        let corpus = Corpus::from_kg(&s.kg);
        let ft = FastText::train(
            &corpus,
            FastTextConfig { dim: 16, buckets: 1 << 11, epochs: 5, ..Default::default() },
        );
        let svc = EncoderIndex::build(ft, &s.kg);
        assert_eq!(svc.name(), "fastText");
        let mut hits = 0;
        for e in s.kg.entities().take(20) {
            if svc.lookup(&e.label, 5).iter().any(|c| c.entity == e.id) {
                hits += 1;
            }
        }
        assert!(hits >= 16, "only {hits}/20 exact labels resolved");
    }
}
