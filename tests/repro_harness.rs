//! Smoke tests of the experiment harness: each table/figure generator runs
//! at smoke scale and emits a structurally sound report fragment.
//!
//! The slow generators (full system sweeps) are exercised once through a
//! shared environment; the quick ones run individually.

use emblookup_bench::experiments as exp;
use emblookup_bench::harness::{Env, Scale};
use emblookup_kg::KgFlavor;
use std::sync::OnceLock;

fn env() -> &'static Env {
    static ENV: OnceLock<Env> = OnceLock::new();
    ENV.get_or_init(|| Env::build(KgFlavor::Wikidata, Scale::Smoke))
}

#[test]
fn table1_reports_three_datasets() {
    let report = exp::table1(Scale::Smoke);
    assert!(report.contains("ST-Wikidata"));
    assert!(report.contains("ST-DBPedia"));
    assert!(report.contains("Tough Tables"));
    assert!(report.contains("#Cells to annotate"));
}

#[test]
fn table2_has_all_eight_rows() {
    let report = exp::table2(env());
    for system in ["bbw", "MantisTable", "JenTab", "DoSeR", "Katara"] {
        assert!(report.contains(system), "missing {system} in:\n{report}");
    }
    assert!(report.contains("Speedup CPU"));
}

#[test]
fn table5_compares_eight_services() {
    let report = exp::table5(env(), Scale::Smoke);
    for svc in [
        "FuzzyWuzzy",
        "Elastic Search",
        "LSH",
        "Exact Match",
        "q-gram",
        "Levenshtein",
        "Wikidata API",
        "SearX API",
    ] {
        assert!(report.contains(svc), "missing {svc} in:\n{report}");
    }
}

#[test]
fn fig4_recall_is_in_unit_interval() {
    let report = exp::fig4(env());
    for line in report.lines().filter(|l| l.starts_with("| ") && !l.contains("Recall")) {
        let val: f64 = line
            .split('|')
            .nth(2)
            .unwrap()
            .trim()
            .parse()
            .unwrap_or(-1.0);
        assert!((0.0..=1.0).contains(&val), "recall out of range in {line}");
    }
}

#[test]
fn fig5_covers_byte_budgets() {
    let report = exp::fig5(env());
    for bytes in ["| 8 |", "| 16 |", "| 32 |", "| 64 |", "| 256 (none) |"] {
        assert!(report.contains(bytes), "missing {bytes} in:\n{report}");
    }
}

#[test]
fn index_sizes_show_pq_smaller_than_flat() {
    let report = exp::index_sizes(env());
    let grab = |needle: &str| -> usize {
        report
            .lines()
            .find(|l| l.contains(needle))
            .and_then(|l| l.split('|').nth(2))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    };
    let pq = grab("EmbLookup PQ");
    let flat = grab("EmbLookup flat");
    assert!(pq > 0 && flat > 0);
    assert!(pq < flat, "PQ index {pq} not smaller than flat {flat}");
}

#[test]
fn gpu_cost_model_is_documented_constant() {
    assert_eq!(exp::GPU_LANES, 4);
    let d = std::time::Duration::from_millis(40);
    assert_eq!(exp::gpu_time(d), std::time::Duration::from_millis(10));
}
