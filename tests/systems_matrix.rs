//! Integration matrix: every annotation system × several lookup services
//! over a shared dataset, verifying sane accuracy and clean interop.

use emblookup::baselines::{
    ElasticLikeService, ExactMatchService, FuzzyWuzzyService, LevenshteinService, QGramService,
    RemoteCostModel, RemoteService,
};
use emblookup::prelude::*;
use emblookup::semtab::{
    run_data_repair, run_entity_disambiguation, with_missing, with_noise, AnnotationSystem,
    BbwSystem, DoSerSystem, JenTabSystem, KataraSystem, MantisTableSystem,
};

struct Fixture {
    synth: emblookup::kg::SynthKg,
    dataset: emblookup::semtab::Dataset,
}

fn fixture() -> Fixture {
    let synth = generate(SynthKgConfig::small(200));
    let dataset = generate_dataset(&synth, &DatasetConfig::tiny(200));
    Fixture { synth, dataset }
}

fn services(kg: &KnowledgeGraph) -> Vec<Box<dyn LookupService + '_>> {
    vec![
        Box::new(ExactMatchService::new(kg, false)),
        Box::new(LevenshteinService::new(kg, false, 3)),
        Box::new(QGramService::new(kg, false, 3)),
        Box::new(FuzzyWuzzyService::new(kg, false)),
        Box::new(ElasticLikeService::new(kg, false)),
        Box::new(RemoteService::new(
            ExactMatchService::new(kg, true),
            RemoteCostModel::wikidata(),
            "Wikidata API",
        )),
    ]
}

#[test]
fn every_sta_system_works_with_every_service() {
    let f = fixture();
    let systems: Vec<Box<dyn AnnotationSystem>> = vec![
        Box::new(BbwSystem),
        Box::new(MantisTableSystem),
        Box::new(JenTabSystem::default()),
    ];
    for system in &systems {
        for service in services(&f.synth.kg) {
            let cea = run_cea(&f.synth.kg, &f.dataset, system.as_ref(), service.as_ref(), 10);
            let cta = run_cta(&f.synth.kg, &f.dataset, system.as_ref(), service.as_ref(), 10);
            assert!(
                cea.f1() > 0.7,
                "{} + {} CEA F1 {} too low on clean data",
                system.name(),
                service.name(),
                cea.f1()
            );
            assert!(
                cta.f1() > 0.5,
                "{} + {} CTA F1 {} too low on clean data",
                system.name(),
                service.name(),
                cta.f1()
            );
        }
    }
}

#[test]
fn doser_and_katara_work_with_every_service() {
    let f = fixture();
    let broken = with_missing(&f.dataset, 0.2, 201);
    for service in services(&f.synth.kg) {
        let ea = run_entity_disambiguation(
            &f.synth.kg,
            &f.dataset,
            &DoSerSystem::default(),
            service.as_ref(),
            10,
        );
        assert!(
            ea.f1() > 0.6,
            "DoSeR + {} EA F1 {} too low",
            service.name(),
            ea.f1()
        );
        let dr = run_data_repair(&f.synth.kg, &broken, &KataraSystem, service.as_ref(), 10);
        assert!(
            dr.f1() > 0.3,
            "Katara + {} DR F1 {} too low",
            service.name(),
            dr.f1()
        );
    }
}

#[test]
fn noise_hurts_exact_match_most() {
    let f = fixture();
    let noisy = with_noise(&f.dataset, 0.8, 202);
    let exact = ExactMatchService::new(&f.synth.kg, false);
    let lev = LevenshteinService::new(&f.synth.kg, false, 3);
    let f_exact = run_cea(&f.synth.kg, &noisy, &BbwSystem, &exact, 10).f1();
    let f_lev = run_cea(&f.synth.kg, &noisy, &BbwSystem, &lev, 10).f1();
    assert!(
        f_exact < f_lev,
        "exact ({f_exact}) should collapse harder than Levenshtein ({f_lev})"
    );
}

#[test]
fn remote_service_charges_latency_in_system_runs() {
    let f = fixture();
    let remote = RemoteService::new(
        ExactMatchService::new(&f.synth.kg, true),
        RemoteCostModel::wikidata(),
        "Wikidata API",
    );
    let local = ExactMatchService::new(&f.synth.kg, true);
    let r_remote = run_cea(&f.synth.kg, &f.dataset, &BbwSystem, &remote, 10);
    let r_local = run_cea(&f.synth.kg, &f.dataset, &BbwSystem, &local, 10);
    assert!(
        r_remote.lookup_time > r_local.lookup_time * 5,
        "remote lookup time {:?} not dominated by simulated latency (local {:?})",
        r_remote.lookup_time,
        r_local.lookup_time
    );
    // identical accuracy: same inner matcher
    assert!((r_remote.f1() - r_local.f1()).abs() < 1e-9);
}
