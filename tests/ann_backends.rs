//! Cross-backend contract test: every index in `emblookup-ann` answers the
//! same workload with consistent semantics (sorted results, bounded k) and
//! reasonable recall against the exact flat index.

use emblookup::ann::{
    lsh::LshConfig, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, IvfPqConfig,
    IvfPqIndex, Neighbor, PqConfig, PqIndex, RefinedPqIndex, SqIndex, VectorSet,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vs = VectorSet::new(dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        vs.push(&v);
    }
    vs
}

fn recall_vs_flat(
    flat: &FlatIndex,
    search: &dyn Fn(&[f32], usize) -> Vec<Neighbor>,
    queries: &VectorSet,
    k: usize,
) -> f64 {
    let mut acc = 0.0;
    for q in queries.iter() {
        let truth: Vec<usize> = flat.search(q, k).iter().map(|n| n.index).collect();
        let got: Vec<usize> = search(q, k).iter().map(|n| n.index).collect();
        acc += truth.iter().filter(|i| got.contains(i)).count() as f64 / k as f64;
    }
    acc / queries.len() as f64
}

#[test]
fn all_backends_honor_the_search_contract() {
    let data = random_set(600, 16, 1);
    let queries = random_set(20, 16, 2);
    let flat = FlatIndex::new(data.clone());

    let pq_cfg = PqConfig { m: 4, ks: 32, kmeans_iters: 8, seed: 0 };
    let pq = PqIndex::build(&data, pq_cfg);
    let refined = RefinedPqIndex::new(PqIndex::build(&data, pq_cfg), data.clone(), 6);
    let ivf = IvfIndex::build(data.clone(), IvfConfig { nlist: 16, nprobe: 6, kmeans_iters: 8, seed: 0 });
    let ivfpq = IvfPqIndex::build(
        &data,
        IvfPqConfig { nlist: 16, nprobe: 8, pq: pq_cfg, kmeans_iters: 8, seed: 0 },
    );
    let hnsw = HnswIndex::build(data.clone(), HnswConfig::default());
    let sq = SqIndex::build(&data);

    type SearchFn = Box<dyn Fn(&[f32], usize) -> Vec<Neighbor>>;
    let backends: Vec<(&str, SearchFn, f64)> = vec![
        ("pq", Box::new(move |q, k| pq.search(q, k)), 0.45),
        ("refined_pq", Box::new(move |q, k| refined.search(q, k)), 0.85),
        ("ivf", Box::new(move |q, k| ivf.search(q, k)), 0.55),
        ("ivfpq", Box::new(move |q, k| ivfpq.search(q, k)), 0.35),
        ("hnsw", Box::new(move |q, k| hnsw.search(q, k)), 0.80),
        ("sq8", Box::new(move |q, k| sq.search(q, k)), 0.90),
    ];

    for (name, search, min_recall) in &backends {
        // contract: sorted ascending, distinct, bounded by k
        let hits = search(queries.get(0), 10);
        assert!(hits.len() <= 10, "{name} overflowed k");
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist, "{name} returned unsorted results");
        }
        let mut ids: Vec<usize> = hits.iter().map(|n| n.index).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), hits.len(), "{name} returned duplicates");

        // recall floor
        let r = recall_vs_flat(&flat, search.as_ref(), &queries, 10);
        assert!(r >= *min_recall, "{name} recall@10 {r} below floor {min_recall}");
    }
}

#[test]
fn lsh_candidates_find_near_duplicates() {
    use emblookup::ann::lsh::hash_feature;
    use emblookup::ann::MinHashLsh;
    use emblookup::text::distance::qgrams;

    let mut lsh = MinHashLsh::new(LshConfig { bands: 16, rows: 3, seed: 0 });
    let names = ["product quantization", "product quantisation", "hnsw graph", "flat index"];
    for (i, n) in names.iter().enumerate() {
        let f: Vec<u64> = qgrams(n, 3).iter().map(|g| hash_feature(g)).collect();
        lsh.insert(i as u32, &f);
    }
    let f: Vec<u64> = qgrams("product quantization", 3).iter().map(|g| hash_feature(g)).collect();
    let cands = lsh.candidates(&f);
    assert!(cands.contains(&0));
    assert!(cands.contains(&1), "near-duplicate spelling missed");
}
