//! Cross-crate persistence round trips: KG files, model files, and the
//! re-served lookup pipeline.

use emblookup::core::EmbLookupModel;
use emblookup::kg::{kg_from_bytes, kg_to_bytes};
use emblookup::prelude::*;
use std::sync::Arc;

#[test]
fn full_pipeline_survives_save_and_load() {
    let synth = generate(SynthKgConfig::tiny(120));
    let config = EmbLookupConfig::tiny(120);
    let original = EmbLookup::train_on(&synth.kg, config.clone());

    // persist both artifacts
    let kg_bytes = kg_to_bytes(&synth.kg);
    let model_bytes = original.model().to_bytes();

    // restore into a fresh pipeline
    let kg = kg_from_bytes(&kg_bytes).unwrap();
    let model = EmbLookupModel::from_bytes(&model_bytes, config).unwrap();
    let restored = EmbLookup::from_model(Arc::new(model), &kg, Compression::None);

    // identical results for a set of queries
    for e in synth.kg.entities().take(15) {
        let a: Vec<EntityId> = original.lookup(&e.label, 5).iter().map(|c| c.entity).collect();
        let b: Vec<EntityId> = restored.lookup(&e.label, 5).iter().map(|c| c.entity).collect();
        assert_eq!(a, b, "restored pipeline diverges for {}", e.label);
    }
}

#[test]
fn model_bytes_are_stable_across_serializations() {
    let synth = generate(SynthKgConfig::tiny(121));
    let service = EmbLookup::train_on(&synth.kg, EmbLookupConfig::tiny(121));
    let a = service.model().to_bytes();
    let b = service.model().to_bytes();
    assert_eq!(a, b);
}

#[test]
fn kg_file_size_is_reasonable() {
    let synth = generate(SynthKgConfig::small(122));
    let bytes = kg_to_bytes(&synth.kg);
    // rough sanity: strings dominate; well under 1 KiB per entity
    assert!(bytes.len() < synth.kg.num_entities() * 1024);
    assert!(bytes.len() > synth.kg.num_entities() * 8);
}
