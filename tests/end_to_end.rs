//! End-to-end integration tests: train → index → lookup across crates.

use emblookup::prelude::*;
use emblookup::text::NoiseInjector;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained() -> &'static (emblookup::kg::SynthKg, EmbLookup) {
    // training is the expensive part; share one model across the tests
    static FIXTURE: std::sync::OnceLock<(emblookup::kg::SynthKg, EmbLookup)> =
        std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let synth = generate(SynthKgConfig::small(101));
        let config = EmbLookupConfig {
            epochs: 8,
            triplets_per_entity: 12,
            ..EmbLookupConfig::fast(101)
        };
        let service = EmbLookup::train_on(&synth.kg, config);
        (synth, service)
    })
}

#[test]
fn exact_labels_resolve_with_high_hit_rate() {
    let (synth, service) = trained();
    let mut hits = 0;
    let total = 100;
    for e in synth.kg.entities().take(total) {
        if service.lookup(&e.label, 5).iter().any(|c| c.entity == e.id) {
            hits += 1;
        }
    }
    assert!(hits >= 95, "only {hits}/{total} exact labels resolved in top-5");
}

#[test]
fn single_typo_resolves_in_top_ten() {
    let (synth, service) = trained();
    let mut rng = StdRng::seed_from_u64(1);
    let injector = NoiseInjector::typos();
    let mut hits = 0;
    let total = 100;
    for e in synth.kg.entities().take(total) {
        let noisy = injector.corrupt(&e.label, &mut rng);
        if service.lookup(&noisy, 10).iter().any(|c| c.entity == e.id) {
            hits += 1;
        }
    }
    assert!(hits >= 70, "only {hits}/{total} typos resolved in top-10");
}

#[test]
fn aliases_resolve_better_than_chance() {
    let (synth, service) = trained();
    let mut hits = 0;
    let mut total = 0;
    for e in synth.kg.entities().take(150) {
        let Some(alias) = e.aliases.first() else { continue };
        total += 1;
        if service.lookup(alias, 10).iter().any(|c| c.entity == e.id) {
            hits += 1;
        }
    }
    // semantic lookup is the hard case; random top-10 of 600 would be ~1.7%
    assert!(
        hits * 100 >= total * 30,
        "alias hit rate too low: {hits}/{total}"
    );
}

#[test]
fn pq_and_flat_agree_on_most_top1() {
    let (synth, service) = trained();
    let pq = EmbLookup::from_model(service.model_arc(), &synth.kg, Compression::default_pq());
    let mut agree = 0;
    let total = 80;
    for e in synth.kg.entities().take(total) {
        let flat_top = service.lookup(&e.label, 1)[0].entity;
        let pq_top = pq.lookup(&e.label, 1)[0].entity;
        if flat_top == pq_top {
            agree += 1;
        }
    }
    assert!(agree * 10 >= total * 8, "PQ/flat top-1 agreement {agree}/{total}");
}

#[test]
fn training_is_deterministic_across_runs() {
    let synth = generate(SynthKgConfig::tiny(55));
    let config = EmbLookupConfig::tiny(55);
    let a = EmbLookup::train_on(&synth.kg, config.clone());
    let b = EmbLookup::train_on(&synth.kg, config);
    let label = &synth.kg.entities().next().unwrap().label;
    let ha: Vec<EntityId> = a.lookup(label, 5).iter().map(|c| c.entity).collect();
    let hb: Vec<EntityId> = b.lookup(label, 5).iter().map(|c| c.entity).collect();
    assert_eq!(ha, hb);
}

#[test]
fn bulk_lookup_matches_pointwise() {
    let (synth, service) = trained();
    let labels: Vec<&str> = synth
        .kg
        .entities()
        .take(25)
        .map(|e| e.label.as_str())
        .collect();
    let bulk = service.lookup_batch(&labels, 5);
    for (label, batch_hits) in labels.iter().zip(&bulk) {
        let single = service.lookup(label, 5);
        let b: Vec<EntityId> = batch_hits.iter().map(|c| c.entity).collect();
        let s: Vec<EntityId> = single.iter().map(|c| c.entity).collect();
        assert_eq!(b, s, "bulk/single disagree for {label}");
    }
}

#[test]
fn degenerate_queries_never_panic() {
    let (_, service) = trained();
    for q in ["", " ", "\t\n", "ÅßÇ∂", "🌍🌎🌏", &"q".repeat(10_000)] {
        let hits = service.lookup(q, 5);
        assert!(hits.len() <= 5);
    }
}

#[test]
fn single_entity_kg_trains_and_looks_up() {
    let mut kg = KnowledgeGraph::new();
    let t = kg.add_type("thing", None);
    let id = kg.add_entity("Solo Entity", vec!["The Only One".into()], vec![t]);
    let config = EmbLookupConfig::tiny(9);
    let service = EmbLookup::train_on(&kg, config);
    let hits = service.lookup("Solo Entity", 3);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].entity, id);
}
