//! Failure injection: malformed inputs, degenerate graphs, and corrupted
//! persistence buffers must produce errors or sane fallbacks, never UB or
//! surprising panics.

use emblookup::core::EmbLookupModel;
use emblookup::kg::{kg_from_bytes, kg_to_bytes};
use emblookup::prelude::*;

#[test]
fn kg_deserialization_rejects_every_truncation_point() {
    let kg = generate(SynthKgConfig::tiny(90)).kg;
    let bytes = kg_to_bytes(&kg);
    // cutting the buffer anywhere must yield Err, not panic
    for cut in [0, 1, 7, 8, 9, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            kg_from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} accepted"
        );
    }
}

#[test]
fn kg_deserialization_rejects_bit_flips_in_header() {
    let kg = generate(SynthKgConfig::tiny(91)).kg;
    let mut bytes = kg_to_bytes(&kg);
    bytes[0] ^= 0xFF; // break magic
    assert!(kg_from_bytes(&bytes).is_err());
}

#[test]
fn model_load_with_garbage_is_an_error() {
    assert!(EmbLookupModel::from_bytes(&[], EmbLookupConfig::tiny(0)).is_err());
    assert!(EmbLookupModel::from_bytes(&[0u8; 64], EmbLookupConfig::tiny(0)).is_err());
}

#[test]
fn lookup_k_zero_returns_empty() {
    let synth = generate(SynthKgConfig::tiny(92));
    let service = EmbLookup::train_on(&synth.kg, EmbLookupConfig::tiny(92));
    assert!(service.lookup("anything", 0).is_empty());
}

#[test]
fn lookup_k_larger_than_kg_returns_all() {
    let synth = generate(SynthKgConfig::tiny(93));
    let service = EmbLookup::train_on(&synth.kg, EmbLookupConfig::tiny(93));
    let hits = service.lookup("anything", 10_000);
    assert_eq!(hits.len(), synth.kg.num_entities());
}

#[test]
fn baselines_survive_pathological_queries() {
    use emblookup::baselines::*;
    let synth = generate(SynthKgConfig::tiny(94));
    let kg = &synth.kg;
    let services: Vec<Box<dyn LookupService>> = vec![
        Box::new(ExactMatchService::new(kg, true)),
        Box::new(LevenshteinService::new(kg, false, 3)),
        Box::new(QGramService::new(kg, false, 3)),
        Box::new(FuzzyWuzzyService::new(kg, false)),
        Box::new(ElasticLikeService::new(kg, false)),
        Box::new(ElasticOpService::new(kg, false, ElasticOp::Levenshtein)),
    ];
    let nasty = [
        "",
        " ",
        "\u{0}",
        "🦀🦀🦀",
        "' OR 1=1 --",
        &"a".repeat(5_000),
        "\n\n\n",
    ];
    for svc in &services {
        for q in nasty {
            let hits = svc.lookup(q, 5);
            assert!(hits.len() <= 5, "{} overflowed k on {q:?}", svc.name());
        }
    }
}

#[test]
fn annotation_of_empty_table_is_a_noop() {
    use emblookup::semtab::{AnnotationSystem, BbwSystem, Table};
    use emblookup::baselines::ExactMatchService;
    let synth = generate(SynthKgConfig::tiny(95));
    let service = ExactMatchService::new(&synth.kg, false);
    let empty = Table { id: 0, rows: vec![], col_types: vec![] };
    let ann = BbwSystem.annotate(&synth.kg, &empty, &service, 5);
    assert!(ann.cell_entities.is_empty());
    assert!(ann.col_types.is_empty());
}

#[test]
fn config_validation_blocks_invalid_training() {
    let mut config = EmbLookupConfig::tiny(96);
    config.compression = Compression::Pq { m: 5, ks: 16 }; // 5 ∤ 16
    let synth = generate(SynthKgConfig::tiny(96));
    let result = std::panic::catch_unwind(|| EmbLookup::train_on(&synth.kg, config));
    assert!(result.is_err(), "invalid config must refuse to train");
}
