#!/usr/bin/env python3
"""Splices the sections of repro_full.md into EXPERIMENTS.md placeholders."""
import re, sys

repro = open("repro_full.md").read()

def section(start_marker, end_markers):
    i = repro.find(start_marker)
    if i < 0:
        return f"*(missing: {start_marker})*"
    ends = [repro.find(m, i + 1) for m in end_markers]
    ends = [e for e in ends if e > 0]
    j = min(ends) if ends else len(repro)
    return repro[i:j].strip()

mapping = {
    "<!-- TABLE1 -->": section("## Table I ", ["## Table II"]),
    "<!-- TABLE2 -->": section("## Table II ", ["## Table III"]),
    "<!-- TABLE3 -->": section("## Table III ", ["## Table IV"]),
    "<!-- TABLE4 -->": section("## Table IV ", ["## Table VI"]),
    "<!-- TABLE5 -->": section("## Table V ", ["## Table VII"]),
    "<!-- TABLE6 -->": section("## Table VI ", ["## Table V "]),
    "<!-- TABLE7 -->": section("## Table VII ", ["## Table VIII"]),
    "<!-- TABLE8 -->": section("## Table VIII ", ["## Ablation", "## Figure 3"]),
    "<!-- FIG3 -->": section("## Figure 3 ", ["## Figure 4"]),
    "<!-- FIG4 -->": section("## Figure 4 ", ["## Figure 5"]),
    "<!-- FIG5 -->": section("## Figure 5 ", ["## Index sizes"]),
    "<!-- SIZES -->": section("## Index sizes", ["\n## ", "$ "]),
    "<!-- ABLATION -->": section("## Ablation ", ["## Figure 3"]),
}

doc = open("EXPERIMENTS.md").read()
for marker, content in mapping.items():
    # drop the duplicated "## ..." heading line from the spliced content
    body = "\n".join(content.splitlines()[1:]).strip()
    doc = doc.replace(marker, body)
open("EXPERIMENTS.md", "w").write(doc)
print("EXPERIMENTS.md filled")
