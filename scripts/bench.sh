#!/usr/bin/env bash
# Micro-benchmark harness. Runs the full repro pipeline (pass --smoke for a
# quick pass), regenerates BENCH_lookup.json in the repo root, and prints a
# delta table of histogram means against the previously checked-in snapshot
# so a perf PR can paste before/after numbers straight from CI output.
# Also runs the ANN scale-tier bench (BENCH_ann.json): pass --scale to add
# the 1M-entity tier on top of the default 600 + 100k tiers.
set -euo pipefail
cd "$(dirname "$0")/.."

# --scale is ann_bench-only; everything else (e.g. --smoke) goes to both
repro_args=()
ann_args=()
for a in "$@"; do
  case "$a" in
    --scale) ann_args+=("$a") ;;
    --smoke) repro_args+=("$a"); ann_args+=("$a") ;;
    *) repro_args+=("$a") ;;
  esac
done

prev=$(mktemp)
prev_ann=$(mktemp)
prev_serve=$(mktemp)
trap 'rm -f "$prev" "$prev_ann" "$prev_serve"' EXIT
if [[ -f BENCH_lookup.json ]]; then
  cp BENCH_lookup.json "$prev"
else
  echo '{"histograms":{}}' > "$prev"
fi
if [[ -f BENCH_ann.json ]]; then
  cp BENCH_ann.json "$prev_ann"
else
  echo '{"tiers":[]}' > "$prev_ann"
fi
if [[ -f BENCH_serve.json ]]; then
  cp BENCH_serve.json "$prev_serve"
else
  echo '{"scenarios":[]}' > "$prev_serve"
fi

echo "== cargo run --release -p emblookup-bench --bin repro -- ${repro_args[*]-} =="
cargo run --release --offline -p emblookup-bench --bin repro -- ${repro_args[@]+"${repro_args[@]}"}

# Append this run to the perf trajectory. The timestamp comes from
# `date` here at script level, keeping the in-process snapshot (and the
# determinism gate over it) free of wall-clock reads.
ts=$(date -u +%Y-%m-%dT%H:%M:%SZ)
python3 - "$ts" BENCH_lookup.json >> BENCH_history.jsonl <<'PY'
import json, sys
with open(sys.argv[2]) as f:
    snap = json.load(f)
print(json.dumps({"timestamp": sys.argv[1], **snap}, separators=(",", ":")))
PY
echo "== appended run to BENCH_history.jsonl ($(wc -l < BENCH_history.jsonl) runs) =="

python3 - "$prev" BENCH_lookup.json <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    prev = json.load(f).get("histograms", {})
with open(sys.argv[2]) as f:
    cur = json.load(f).get("histograms", {})

names = sorted(set(prev) | set(cur))
if not names:
    sys.exit(0)

def fmt(ns):
    if ns is None:
        return "-"
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"

rows = [("metric", "prev mean", "new mean", "speedup")]
for name in names:
    p = prev.get(name, {}).get("mean_ns")
    c = cur.get(name, {}).get("mean_ns")
    speed = f"{p / c:.2f}x" if p and c else "-"
    rows.append((name, fmt(p), fmt(c), speed))

widths = [max(len(r[i]) for r in rows) for i in range(4)]
print("\n== mean latency vs previous BENCH_lookup.json ==")
for i, r in enumerate(rows):
    print("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(r)))
    if i == 0:
        print("  ".join("-" * w for w in widths))
PY

# ANN scale tiers: recall@10 + latency percentiles per backend, plus the
# batched-ADC kernel speedup, regenerating BENCH_ann.json.
echo
echo "== cargo run --release -p emblookup-bench --bin ann_bench -- ${ann_args[*]-} =="
cargo run --release --offline -p emblookup-bench --bin ann_bench -- ${ann_args[@]+"${ann_args[@]}"}

python3 - "$prev_ann" BENCH_ann.json <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    prev = json.load(f)
with open(sys.argv[2]) as f:
    cur = json.load(f)

def index(snap):
    out = {}
    for tier in snap.get("tiers", []):
        for b in tier.get("backends", []):
            out[(tier["entities"], b["name"])] = b
    return out

pi, ci = index(prev), index(cur)

def fmt(ns):
    if ns is None:
        return "-"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"

rows = [("tier/backend", "recall@10", "p99", "prev p99", "speedup")]
for key in sorted(ci):
    c = ci[key]
    p = pi.get(key, {})
    pp, cp = p.get("p99_ns"), c.get("p99_ns")
    speed = f"{pp / cp:.2f}x" if pp and cp else "-"
    rows.append((f"{key[0]}/{key[1]}", f"{c['recall_at_10']:.3f}", fmt(cp), fmt(pp), speed))

sp, sc = prev.get("adc_batch_speedup"), cur.get("adc_batch_speedup")
rows.append(("adc batched-vs-per-code", "-", f"{sc:.2f}x" if sc else "-",
             f"{sp:.2f}x" if sp else "-", "-"))

widths = [max(len(r[i]) for r in rows) for i in range(5)]
print("\n== ANN tiers vs previous BENCH_ann.json (kernel: %s) ==" % cur.get("kernel", "?"))
for i, r in enumerate(rows):
    print("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(r)))
    if i == 0:
        print("  ".join("-" * w for w in widths))
PY

# Serving-layer chaos bench: open-loop load generator against a live
# in-process server — healthy scatter-gather, one-shard-ejected, and
# overload-pinned scenarios — regenerating BENCH_serve.json.
echo
echo "== cargo run --release -p emblookup-bench --bin serve_bench -- ${repro_args[*]-} =="
cargo run --release --offline -p emblookup-bench --bin serve_bench -- ${repro_args[@]+"${repro_args[@]}"}

python3 - "$prev_serve" BENCH_serve.json <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    prev = {s["name"]: s for s in json.load(f).get("scenarios", [])}
with open(sys.argv[2]) as f:
    cur = {s["name"]: s for s in json.load(f).get("scenarios", [])}

def fmt_us(us):
    if us is None:
        return "-"
    if us >= 1000:
        return f"{us / 1000:.2f}ms"
    return f"{us}us"

rows = [("scenario", "goodput", "prev", "p99", "prev p99", "shed", "partial", "pinned")]
for name in cur:
    c, p = cur[name], prev.get(name, {})
    rows.append((
        name,
        f"{c['goodput_rps']:.0f}/s",
        f"{p['goodput_rps']:.0f}/s" if p else "-",
        fmt_us(c["p99_us"]),
        fmt_us(p.get("p99_us")),
        str(c["shed"]),
        str(c["server_partial"]),
        str(c["server_overload_pinned"]),
    ))

widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
print("\n== serve scenarios vs previous BENCH_serve.json ==")
for i, r in enumerate(rows):
    print("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(r)))
    if i == 0:
        print("  ".join("-" * w for w in widths))
PY

# Lint-runtime stanza: the static-analysis gate is part of every push,
# so its cold-run wall time is a perf number worth tracking alongside
# the lookup latencies (ci.sh enforces the 30 s budget; this just
# reports).
echo
echo "== emblookup-lint cold-run wall time (per-push gate; ci.sh budget 30s) =="
lint_start_ns=$(date +%s%N)
cargo run -q -p emblookup-lint --release --offline -- --no-cache > /dev/null || true
lint_end_ns=$(date +%s%N)
printf 'emblookup-lint --no-cache: %d ms\n' $(( (lint_end_ns - lint_start_ns) / 1000000 ))
