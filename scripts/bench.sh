#!/usr/bin/env bash
# Micro-benchmark harness. Runs the full repro pipeline (pass --smoke for a
# quick pass), regenerates BENCH_lookup.json in the repo root, and prints a
# delta table of histogram means against the previously checked-in snapshot
# so a perf PR can paste before/after numbers straight from CI output.
set -euo pipefail
cd "$(dirname "$0")/.."

prev=$(mktemp)
trap 'rm -f "$prev"' EXIT
if [[ -f BENCH_lookup.json ]]; then
  cp BENCH_lookup.json "$prev"
else
  echo '{"histograms":{}}' > "$prev"
fi

echo "== cargo run --release -p emblookup-bench --bin repro -- $* =="
cargo run --release --offline -p emblookup-bench --bin repro -- "$@"

# Append this run to the perf trajectory. The timestamp comes from
# `date` here at script level, keeping the in-process snapshot (and the
# determinism gate over it) free of wall-clock reads.
ts=$(date -u +%Y-%m-%dT%H:%M:%SZ)
python3 - "$ts" BENCH_lookup.json >> BENCH_history.jsonl <<'PY'
import json, sys
with open(sys.argv[2]) as f:
    snap = json.load(f)
print(json.dumps({"timestamp": sys.argv[1], **snap}, separators=(",", ":")))
PY
echo "== appended run to BENCH_history.jsonl ($(wc -l < BENCH_history.jsonl) runs) =="

python3 - "$prev" BENCH_lookup.json <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    prev = json.load(f).get("histograms", {})
with open(sys.argv[2]) as f:
    cur = json.load(f).get("histograms", {})

names = sorted(set(prev) | set(cur))
if not names:
    sys.exit(0)

def fmt(ns):
    if ns is None:
        return "-"
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"

rows = [("metric", "prev mean", "new mean", "speedup")]
for name in names:
    p = prev.get(name, {}).get("mean_ns")
    c = cur.get(name, {}).get("mean_ns")
    speed = f"{p / c:.2f}x" if p and c else "-"
    rows.append((name, fmt(p), fmt(c), speed))

widths = [max(len(r[i]) for r in rows) for i in range(4)]
print("\n== mean latency vs previous BENCH_lookup.json ==")
for i, r in enumerate(rows):
    print("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(r)))
    if i == 0:
        print("  ".join("-" * w for w in widths))
PY

# Lint-runtime stanza: the static-analysis gate is part of every push,
# so its cold-run wall time is a perf number worth tracking alongside
# the lookup latencies (ci.sh enforces the 30 s budget; this just
# reports).
echo
echo "== emblookup-lint cold-run wall time (per-push gate; ci.sh budget 30s) =="
lint_start_ns=$(date +%s%N)
cargo run -q -p emblookup-lint --release --offline -- --no-cache > /dev/null || true
lint_end_ns=$(date +%s%N)
printf 'emblookup-lint --no-cache: %d ms\n' $(( (lint_end_ns - lint_start_ns) / 1000000 ))
