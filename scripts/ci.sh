#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs offline: the workspace has no
# crates.io dependencies (rand resolves to the in-tree shim in
# crates/rand), so --offline both works and enforces that it stays true.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== cargo clippy -- -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== emblookup-lint (L001 panic-freedom, L002 hot-path, L003 metric names, L004 markers) =="
# Hard gate: exits 1 with file:line diagnostics on any violation. The
# --fix-metric-names dry run prints the literal→constant plan for the log.
cargo run -q -p emblookup-lint --release --offline -- --fix-metric-names

echo "ci.sh: all checks passed"
