#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs offline: the workspace has no
# crates.io dependencies (rand resolves to the in-tree shim in
# crates/rand), so --offline both works and enforces that it stays true.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

# Tests run twice: pinned to one thread (pure serial pool paths) and at the
# machine default. Batch kernels write disjoint output slots, so both
# configurations must produce identical results — divergence is a bug.
echo "== cargo test -q --offline (EMBLOOKUP_THREADS=1) =="
EMBLOOKUP_THREADS=1 cargo test -q --offline

echo "== cargo test -q --offline (default threads) =="
cargo test -q --offline

# Kernel-dispatch matrix: the ann suite must hold under both the forced
# scalar fallback and auto-detected SIMD (EMBLOOKUP_KERNEL resolves once
# per process, so each setting needs its own run). The ANN bench smoke
# (600-tier only, snapshot untouched) proves the recall/latency harness
# itself stays healthy.
echo "== cargo test -q --offline -p emblookup-ann (EMBLOOKUP_KERNEL=scalar) =="
EMBLOOKUP_KERNEL=scalar cargo test -q --offline -p emblookup-ann

echo "== cargo test -q --offline -p emblookup-ann (EMBLOOKUP_KERNEL=auto) =="
EMBLOOKUP_KERNEL=auto cargo test -q --offline -p emblookup-ann

echo "== ann_bench --smoke (600-tier health check) =="
cargo run -q --release --offline -p emblookup-bench --bin ann_bench -- --smoke

# Serving-layer smoke: the integration suite drives a real server over
# TCP — /healthz, /metrics (Prometheus text with trace-id exemplars),
# /lookup through the degradation ladder, shed-under-load (429), panic
# containment, and the /debug/traces flight recorder (per-trigger tail
# sampling, Chrome export, byte-identical span forests across widths) —
# and its assertions (statuses, rung order, counter values, response
# bytes) must hold at any pool width, so it runs under both thread
# configurations.
# The shards suite adds the sharded scatter-gather cases: multi-shard
# full-coverage serving, a chaos plan that ejects one shard (breaker
# open -> half-open probe -> readmission, partial-result tagging), the
# overload pin, and shed-retry jitter. EMBLOOKUP_THREADS also sets the
# width of the global pool the scatter fans out on, so both suites run
# at both widths.
echo "== serve smoke (EMBLOOKUP_THREADS=1) =="
EMBLOOKUP_THREADS=1 cargo test -q --offline -p emblookup-serve --test server
EMBLOOKUP_THREADS=1 cargo test -q --offline -p emblookup-serve --test shards

echo "== serve smoke (default threads) =="
cargo test -q --offline -p emblookup-serve --test server
cargo test -q --offline -p emblookup-serve --test shards

echo "== cargo clippy -- -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== emblookup-lint --api-check (L001-L013 incl. layering, API drift, interprocedural effects, concurrency protocols) =="
# Hard gate: exits 1 with file:line diagnostics on any violation — this
# includes the interprocedural rules (L008 determinism, L009 lock
# discipline, L010 hot-path effects) and the concurrency-protocol family
# (L011 atomics-ordering discipline, L012 deadline propagation from
# serve handlers, L013 guard-free shared-state writes), whose
# diagnostics print the full call/witness chain with file:line per hop.
# Prints a per-rule violation count summary (zeros included);
# --api-check diffs the public-API snapshot against API.lock (bless with
# --api-bless); the --fix-metric-names dry run prints the
# literal→constant plan for the log. The full pass (including the
# whole-workspace fixed point) must finish within a 30 s wall-clock
# budget so the gate stays cheap enough to run on every push; --no-cache
# keeps the timing honest on warm checkouts.
lint_start=$(date +%s)
cargo run -q -p emblookup-lint --release --offline -- --no-cache --api-check --fix-metric-names
lint_elapsed=$(( $(date +%s) - lint_start ))
echo "emblookup-lint: full pass took ${lint_elapsed}s (budget 30s)"
if [ "$lint_elapsed" -gt 30 ]; then
    echo "ci.sh: FAIL — lint pass exceeded the 30s wall-clock budget" >&2
    exit 1
fi

echo "== ATOMICS.md freshness (emblookup-lint --atomics-report) =="
# The committed atomic-protocol inventory must match the tree: adding or
# re-protocoling an atomic without regenerating ATOMICS.md fails here.
cargo run -q -p emblookup-lint --release --offline -- --atomics-report > target/ATOMICS.md.new
if ! diff -u ATOMICS.md target/ATOMICS.md.new; then
    echo "ci.sh: FAIL — ATOMICS.md is stale; regenerate with" >&2
    echo "  cargo run -q -p emblookup-lint --release --offline -- --atomics-report > ATOMICS.md" >&2
    exit 1
fi
rm -f target/ATOMICS.md.new
echo "ATOMICS.md is current"

echo "ci.sh: all checks passed"
