#!/usr/bin/env bash
# Tier-1 verification gate. Everything runs offline: the workspace has no
# crates.io dependencies (rand resolves to the in-tree shim in
# crates/rand), so --offline both works and enforces that it stays true.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== cargo clippy -- -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "ci.sh: all checks passed"
