#!/usr/bin/env bash
# Best-effort dynamic cross-check for the concurrency-protocol lints
# (L011-L013): runs the pool/obs/serve test suites under
# ThreadSanitizer and Miri where the toolchain allows it.
#
# Both checks need a nightly toolchain (TSan needs -Z sanitizer=thread
# and a rebuilt std via -Z build-std; Miri is a rustup component). This
# container is offline and pins a stable toolchain, so each section
# probes for its prerequisites and SKIPS gracefully when they are
# missing — the script succeeding while skipping everything is the
# expected outcome offline. It is NOT part of tier-1 CI (scripts/ci.sh);
# see CONTRIBUTING.md "Concurrency rules".
set -uo pipefail
cd "$(dirname "$0")/.."

CRATES=(emblookup-pool emblookup-obs emblookup-serve)
ran_any=0

echo "== sanitize.sh: TSan + Miri cross-check (best effort) =="

# ---------------------------------------------------------------- TSan
if rustup toolchain list 2>/dev/null | grep -q nightly && \
   rustup component list --toolchain nightly 2>/dev/null | grep -q "rust-src (installed)"; then
    echo "== ThreadSanitizer (nightly, -Z sanitizer=thread) =="
    target="$(rustc -vV | sed -n 's/^host: //p')"
    for crate in "${CRATES[@]}"; do
        echo "-- tsan: $crate --"
        if RUSTFLAGS="-Z sanitizer=thread" cargo +nightly test --offline -p "$crate" \
            -Z build-std --target "$target" -- --test-threads=4; then
            ran_any=1
        else
            echo "sanitize.sh: WARN — tsan run failed for $crate" >&2
        fi
    done
else
    echo "SKIP tsan: no nightly toolchain with rust-src (offline container)"
fi

# ---------------------------------------------------------------- Miri
# probe with an actual invocation: `command -v cargo-miri` matches the
# rustup proxy shim even when the component is not installed
if cargo +nightly miri --version >/dev/null 2>&1; then
    echo "== Miri (unit tests only; integration tests spawn threads/sockets) =="
    for crate in "${CRATES[@]}"; do
        echo "-- miri: $crate --"
        # -Zmiri-disable-isolation: the obs tests read the clock
        if MIRIFLAGS="-Zmiri-disable-isolation" cargo +nightly miri test --offline -p "$crate" --lib; then
            ran_any=1
        else
            echo "sanitize.sh: WARN — miri run failed for $crate" >&2
        fi
    done
else
    echo "SKIP miri: cargo-miri not installed (offline container)"
fi

if [ "$ran_any" -eq 0 ]; then
    echo "sanitize.sh: nothing ran (no nightly tooling available) — static coverage only (L011-L013 via scripts/ci.sh)"
else
    echo "sanitize.sh: done"
fi
