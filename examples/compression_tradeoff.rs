//! The accuracy/storage/latency trade-off of §III-D: the same trained
//! model served from an uncompressed index, a product-quantized index, and
//! a PCA-compressed index.
//!
//! ```text
//! cargo run --release --example compression_tradeoff
//! ```

use emblookup::prelude::*;
use std::time::Instant;

fn main() {
    let synth = generate(SynthKgConfig::small(23));
    println!("training EmbLookup once…");
    let base = EmbLookup::train_on(
        &synth.kg,
        EmbLookupConfig {
            compression: Compression::None,
            ..EmbLookupConfig::fast(23)
        },
    );
    let model = base.model_arc();

    // re-index the same weights under each compression scheme
    let variants = [
        ("flat (EL-NC)", Compression::None),
        ("PQ 8x256 (EL)", Compression::default_pq()),
        ("PCA k=8", Compression::Pca { k: 8 }),
        ("IVF 32/6", Compression::Ivf { nlist: 32, nprobe: 6 }),
        ("HNSW m=12", Compression::Hnsw { m: 12, ef_search: 48 }),
    ];

    // workload: every entity label, corrupted once
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let injector = emblookup::text::NoiseInjector::typos();
    let queries: Vec<(String, EntityId)> = synth
        .kg
        .entities()
        .map(|e| (injector.corrupt(&e.label, &mut rng), e.id))
        .collect();
    let refs: Vec<&str> = queries.iter().map(|(q, _)| q.as_str()).collect();

    println!("\n{:<16} {:>12} {:>10} {:>10}", "index", "bytes", "hit@10", "time");
    for (name, compression) in variants {
        let service = EmbLookup::from_model(model.clone(), &synth.kg, compression);
        let start = Instant::now();
        let results = service.lookup_batch(&refs, 10);
        let elapsed = start.elapsed();
        let hits = results
            .iter()
            .zip(&queries)
            .filter(|(hits, (_, truth))| hits.iter().any(|c| c.entity == *truth))
            .count();
        println!(
            "{:<16} {:>12} {:>10.3} {:>10.1?}",
            name,
            service.index().nbytes(),
            hits as f64 / queries.len() as f64,
            elapsed
        );
    }
}
