//! Bulk annotation — the paper's motivating scenario (§I): SemTab-style
//! challenges need semantic annotation of hundreds of thousands of cells,
//! and remote lookup services take days under rate limits. This example
//! annotates an entire benchmark dataset with a rate-limited remote
//! service and with EmbLookup, comparing lookup cost end to end.
//!
//! ```text
//! cargo run --release --example bulk_annotation
//! ```

use emblookup::baselines::{ExactMatchService, RemoteCostModel, RemoteService};
use emblookup::prelude::*;
use emblookup::semtab::BbwSystem;

fn main() {
    let synth = generate(SynthKgConfig::small(17));
    let dataset = generate_dataset(&synth, &DatasetConfig::st_wikidata(17));
    let cells = dataset.num_entity_cells();
    println!(
        "workload: {} tables, {} entity cells to annotate",
        dataset.tables.len(),
        cells
    );

    // the status quo: a rate-limited remote endpoint (5 concurrent queries)
    let remote = RemoteService::new(
        ExactMatchService::new(&synth.kg, true),
        RemoteCostModel::wikidata(),
        "Wikidata API",
    );

    println!("training EmbLookup…");
    let emblookup = EmbLookup::train_on(&synth.kg, EmbLookupConfig::fast(17));

    for service in [&remote as &dyn LookupService, &emblookup as &dyn LookupService] {
        let report = run_cea(&synth.kg, &dataset, &BbwSystem, service, 20);
        let per_cell = report.lookup_time.as_secs_f64() / cells as f64;
        println!(
            "{:<14} CEA F1 {:.3} | lookup {:>9.2?} total ({:.2} ms/cell) | extrapolated to 768K cells: {:.1} h",
            service.name(),
            report.f1(),
            report.lookup_time,
            per_cell * 1e3,
            per_cell * 768_000.0 / 3600.0,
        );
    }
    println!(
        "\n(the SemTab 2020 Round 3 submissions the paper cites took 2–3 days \
         via remote services for 768K cells)"
    );
}
