//! CSV interop: export a benchmark in SemTab layout, re-import it, and
//! annotate the re-imported tables — the adoption path for running the
//! pipelines on your own tabular corpus.
//!
//! ```text
//! cargo run --release --example csv_pipeline
//! ```

use emblookup::prelude::*;
use emblookup::semtab::{
    apply_cea_targets, cea_targets_to_csv, run_cea, table_from_csv, table_to_csv, BbwSystem,
    Dataset,
};

fn main() {
    let synth = generate(SynthKgConfig::small(77));
    let dataset = generate_dataset(&synth, &DatasetConfig::tiny(77));

    // 1. export: one CSV per table plus the shared CEA target file
    let csvs: Vec<String> = dataset.tables.iter().map(table_to_csv).collect();
    let targets = cea_targets_to_csv(&dataset);
    println!(
        "exported {} tables ({} bytes of CSV) and {} target rows",
        csvs.len(),
        csvs.iter().map(String::len).sum::<usize>(),
        targets.lines().count()
    );

    // 2. re-import and re-attach ground truth
    let mut tables = Vec::new();
    for (i, csv) in csvs.iter().enumerate() {
        let mut table = table_from_csv(dataset.tables[i].id, csv).expect("re-import");
        apply_cea_targets(&mut table, &targets).expect("targets");
        tables.push(table);
    }
    let reimported = Dataset { name: "reimported".into(), tables };
    assert_eq!(reimported.num_entity_cells(), dataset.num_entity_cells());

    // 3. annotate the round-tripped dataset with EmbLookup
    println!("training EmbLookup…");
    let service = EmbLookup::train_on(&synth.kg, EmbLookupConfig::fast(77));
    let report = run_cea(&synth.kg, &reimported, &BbwSystem, &service, 20);
    println!(
        "CEA over re-imported CSVs: F1 {:.3} ({} cells, lookup {:?})",
        report.f1(),
        report.items,
        report.lookup_time
    );
}
