//! Semantic lookup on a hand-built knowledge graph — the paper's
//! motivating example: looking up DEUTSCHLAND (or GERMONEY) must retrieve
//! the entity GERMANY even though the index stores only primary labels.
//!
//! ```text
//! cargo run --release --example semantic_lookup
//! ```

use emblookup::kg::{KnowledgeGraph, Object};
use emblookup::prelude::*;

/// Builds a small hand-crafted KG with real-world-style aliases.
fn build_kg() -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    let place = kg.add_type("place", None);
    let country = kg.add_type("country", Some(place));
    let city = kg.add_type("city", Some(place));
    let org = kg.add_type("organization", None);
    let person = kg.add_type("person", None);
    let capital_of = kg.add_property("capital of");
    let member_of = kg.add_property("member of");

    let germany = kg.add_entity(
        "Germany",
        vec![
            "Deutschland".into(),
            "Federal Republic of Germany".into(),
            "FRG".into(),
            "BRD".into(),
        ],
        vec![country],
    );
    let france = kg.add_entity(
        "France",
        vec!["French Republic".into(), "Frankreich".into()],
        vec![country],
    );
    let eu = kg.add_entity(
        "European Union",
        vec!["EU".into(), "Europaeische Union".into()],
        vec![org],
    );
    let berlin = kg.add_entity(
        "Berlin",
        vec!["Berlin, Germany".into(), "German capital".into()],
        vec![city],
    );
    let paris = kg.add_entity("Paris", vec!["City of Light".into()], vec![city]);
    kg.add_entity(
        "Bill Gates",
        vec!["William Gates".into(), "William Henry Gates III".into()],
        vec![person],
    );
    // pad the graph with more countries/cities so the lookup problem is
    // not trivial (the model needs negatives to learn against)
    let filler = generate(SynthKgConfig::tiny(3));
    for e in filler.kg.entities() {
        kg.add_entity(e.label.clone(), e.aliases.clone(), vec![city]);
    }

    kg.add_fact(berlin, capital_of, Object::Entity(germany));
    kg.add_fact(paris, capital_of, Object::Entity(france));
    kg.add_fact(germany, member_of, Object::Entity(eu));
    kg.add_fact(france, member_of, Object::Entity(eu));
    kg
}

fn main() {
    let kg = build_kg();
    println!("KG: {} entities, {} facts", kg.num_entities(), kg.num_facts());

    let mut config = EmbLookupConfig::fast(1);
    config.epochs = 30; // tiny graph: train a bit longer
    config.triplets_per_entity = 40;
    config.fasttext_epochs = 50;
    config.compression = Compression::None;
    let service = EmbLookup::train_on(&kg, config);

    // the paper's §I examples: alias, abbreviation, name variant, typo
    for query in [
        "Germany",
        "Deutschland",
        "GERMONEY",
        "EU",
        "European Union",
        "William Gates",
        "Berlin",
    ] {
        let hits = service.lookup(query, 3);
        let top: Vec<String> = hits
            .iter()
            .map(|c| format!("{} ({:.3})", kg.label(c.entity), c.score))
            .collect();
        println!("{query:<18} -> {}", top.join(", "));
    }
}
