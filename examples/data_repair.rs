//! Data repair (the paper's Katara-style task): impute missing table cells
//! from the knowledge graph, driving candidate generation with EmbLookup.
//!
//! ```text
//! cargo run --release --example data_repair
//! ```

use emblookup::prelude::*;
use emblookup::semtab::{run_data_repair, with_missing, with_noise, KataraSystem};

fn main() {
    let synth = generate(SynthKgConfig::small(11));
    let clean = generate_dataset(&synth, &DatasetConfig::st_dbpedia(11));
    // blank out 15% of the entity cells, then additionally misspell 20%
    // of the surviving ones — the hard setting for a lookup service
    let broken = with_noise(&with_missing(&clean, 0.15, 11), 0.20, 11);

    println!("training EmbLookup…");
    let service = EmbLookup::train_on(&synth.kg, EmbLookupConfig::fast(11));

    let report = run_data_repair(&synth.kg, &broken, &KataraSystem, &service, 20);
    println!(
        "repaired {} missing cells: precision {:.3}, recall {:.3}, F1 {:.3}",
        report.items,
        report.metrics.precision(),
        report.metrics.recall(),
        report.f1()
    );
    println!(
        "lookup time {:?}, repair post-processing {:?}",
        report.lookup_time, report.post_time
    );

    // show a few concrete repairs
    let katara = KataraSystem;
    let table = &broken.tables[0];
    let result = katara.repair(&synth.kg, table, &service, 20);
    println!("\nexample repairs in table 0:");
    let mut shown = 0;
    for r in 0..table.num_rows() {
        for c in 0..table.num_cols() {
            let cell = table.cell(r, c);
            if !cell.missing {
                continue;
            }
            if let Some(&imputed) = result.imputations.get(&(r, c)) {
                let truth = cell.truth.unwrap();
                println!(
                    "  ({r},{c}) imputed {:<24} truth {:<24} {}",
                    synth.kg.label(imputed),
                    synth.kg.label(truth),
                    if imputed == truth { "✓" } else { "✗" }
                );
                shown += 1;
                if shown >= 8 {
                    return;
                }
            }
        }
    }
}
