//! Semantic table annotation with a pluggable lookup service.
//!
//! Generates a tabular benchmark over a synthetic KG, then runs the
//! MantisTable-style annotation pipeline twice — once with an
//! ElasticSearch-like lookup, once with EmbLookup — and compares F-scores
//! and lookup time on clean and noisy tables, mirroring the paper's
//! Tables II and IV.
//!
//! ```text
//! cargo run --release --example table_annotation
//! ```

use emblookup::baselines::ElasticLikeService;
use emblookup::prelude::*;
use emblookup::semtab::{with_noise, MantisTableSystem};

fn main() {
    let synth = generate(SynthKgConfig::small(7));
    let clean = generate_dataset(&synth, &DatasetConfig::st_wikidata(7));
    let noisy = with_noise(&clean, 0.30, 7);
    println!(
        "dataset: {} tables, {} annotatable cells",
        clean.tables.len(),
        clean.num_entity_cells()
    );

    println!("training EmbLookup…");
    let emblookup = EmbLookup::train_on(&synth.kg, EmbLookupConfig::fast(7));
    let elastic = ElasticLikeService::new(&synth.kg, false);

    let system = MantisTableSystem;
    for (tag, ds) in [("clean", &clean), ("30% noise", &noisy)] {
        println!("\n=== {tag} tables ===");
        for service in [&elastic as &dyn LookupService, &emblookup as &dyn LookupService] {
            let cea = run_cea(&synth.kg, ds, &system, service, 20);
            let cta = run_cta(&synth.kg, ds, &system, service, 20);
            println!(
                "  {:<12} CEA F1 {:.3} | CTA F1 {:.3} | lookup {:?}",
                service.name(),
                cea.f1(),
                cta.f1(),
                cea.lookup_time
            );
        }
    }
}
