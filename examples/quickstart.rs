//! Quickstart: train EmbLookup on a synthetic knowledge graph and look up
//! entities through exact labels, misspellings and aliases.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use emblookup::prelude::*;

fn main() {
    // 1. A knowledge graph. Here: a deterministic synthetic graph with
    //    labels, aliases (abbreviations, translations, …) and facts.
    let synth = generate(SynthKgConfig::small(42));
    println!(
        "knowledge graph: {} entities, {} facts",
        synth.kg.num_entities(),
        synth.kg.num_facts()
    );

    // 2. Train the full EmbLookup pipeline: verbalized corpus → fastText
    //    semantic leg → triplet mining → two-phase triplet training →
    //    product-quantized entity index.
    let service = EmbLookup::train_on(&synth.kg, EmbLookupConfig::fast(42));
    println!(
        "trained: final triplet loss {:.4}, index {} bytes for {} entities",
        service.report().final_loss(),
        service.index().nbytes(),
        service.index().len()
    );

    // 3. Look up an entity by its exact label, by a typo, and by an alias.
    let entity = synth.kg.entities().nth(30).unwrap();
    let label = entity.label.clone();
    let typo = {
        // corrupt the label with one random edit
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        emblookup::text::NoiseInjector::typos().corrupt(&label, &mut rng)
    };
    let alias = entity.aliases.first().cloned().unwrap_or_else(|| label.clone());

    for query in [label.as_str(), typo.as_str(), alias.as_str()] {
        let hits = service.lookup(query, 5);
        println!("\nlookup({query:?}, 5):");
        for c in &hits {
            let marker = if c.entity == entity.id { "  <-- ground truth" } else { "" };
            println!(
                "  {:<28} score {:>8.4}{}",
                synth.kg.label(c.entity),
                c.score,
                marker
            );
        }
    }
}
