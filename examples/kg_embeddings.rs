//! KG embeddings vs lookup embeddings — the paper's §I distinction.
//!
//! KG embedding models (here: TransE) map *entity ids* into vector space
//! and excel at link prediction, but "retrieving the embedding based on a
//! string requires a two-step process — identify the entity id for the
//! string and then retrieve the corresponding entity embedding". This
//! example runs that two-step pipeline with EmbLookup as step one.
//!
//! ```text
//! cargo run --release --example kg_embeddings
//! ```

use emblookup::embed::{TransE, TransEConfig};
use emblookup::kg::Object;
use emblookup::prelude::*;

fn main() {
    let synth = generate(SynthKgConfig::small(31));
    let kg = &synth.kg;

    println!("training TransE on {} facts…", kg.num_facts());
    let transe = TransE::train(kg, TransEConfig { epochs: 60, ..Default::default() });

    // 1. TransE does what it is for: rank true facts above corrupted ones
    let mut wins = 0;
    let mut total = 0;
    for f in kg.facts().iter().take(200) {
        let Object::Entity(t) = f.object else { continue };
        let fake = EntityId((t.0 + 7) % kg.num_entities() as u32);
        total += 1;
        if transe.fact_energy(f.subject, f.property, t)
            < transe.fact_energy(f.subject, f.property, fake)
        {
            wins += 1;
        }
    }
    println!("link prediction: true facts beat corrupted in {wins}/{total} cases");

    // 2. …but it has no entry point for a string. The two-step pipeline:
    //    EmbLookup resolves the (misspelled) mention to an entity id,
    //    then TransE supplies that entity's embedding.
    println!("training EmbLookup for the string-resolution step…");
    let lookup = EmbLookup::train_on(kg, EmbLookupConfig::fast(31));

    let entity = synth.cities[3];
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    let query = emblookup::text::NoiseInjector::typos().corrupt(kg.label(entity), &mut rng);

    let resolved = lookup.lookup(&query, 1)[0].entity;
    let embedding = transe.entity_embedding(resolved);
    println!(
        "query {:?} -> resolved to {:?} (truth {:?}) -> 32-d TransE vector, ‖v‖ = {:.3}",
        query,
        kg.label(resolved),
        kg.label(entity),
        embedding.iter().map(|x| x * x).sum::<f32>().sqrt()
    );

    // 3. the KG embedding of the resolved entity ranks its true country
    //    first among all countries via the translation h + r ≈ t
    let mut best: Option<(EntityId, f32)> = None;
    for &c in &synth.countries {
        let e = transe.fact_energy(resolved, synth.props.located_in, c);
        if best.map(|(_, b)| e < b).unwrap_or(true) {
            best = Some((c, e));
        }
    }
    let truth = kg
        .facts_of(resolved)
        .find_map(|f| match (f.property == synth.props.located_in, &f.object) {
            (true, Object::Entity(o)) => Some(*o),
            _ => None,
        });
    if let (Some((predicted, _)), Some(truth)) = (best, truth) {
        println!(
            "located-in prediction via h + r ≈ t: {} (truth: {}) {}",
            kg.label(predicted),
            kg.label(truth),
            if predicted == truth { "✓" } else { "✗" }
        );
    }
}
