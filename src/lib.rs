//! # EmbLookup
//!
//! A full Rust reproduction of *"Accelerating Entity Lookups in Knowledge
//! Graphs Through Embeddings"* (Abuoda, Thirumuruganathan, Aboulnaga —
//! ICDE 2022), including every substrate the paper depends on: a minimal
//! deep-learning stack, a knowledge-graph store with synthetic Wikidata /
//! DBPedia-style generators, similarity search with product quantization,
//! baseline lookup services, and the semantic-table-annotation systems of
//! the evaluation.
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `emblookup-core` | the EmbLookup model, trainer, index, service |
//! | [`kg`] | `emblookup-kg` | knowledge graphs, synthetic generators, `LookupService` |
//! | [`text`] | `emblookup-text` | one-hot encoding, string distances, noise |
//! | [`embed`] | `emblookup-embed` | fastText, word2vec, LSTM, BERT-mini encoders |
//! | [`ann`] | `emblookup-ann` | flat/IVF/PQ/PCA/LSH similarity search |
//! | [`baselines`] | `emblookup-baselines` | competing lookup services |
//! | [`semtab`] | `emblookup-semtab` | tables, datasets, CEA/CTA/EA/DR tasks, systems |
//! | [`serve`] | `emblookup-serve` | hardened HTTP serving: admission control, deadlines, degradation ladder |
//! | [`tensor`] | `emblookup-tensor` | tensors, autograd, layers, optimizers |
//!
//! ## Quick start
//!
//! ```no_run
//! use emblookup::prelude::*;
//!
//! let synth = generate(SynthKgConfig::small(42));
//! let service = EmbLookup::train_on(&synth.kg, EmbLookupConfig::fast(42));
//! for hit in service.lookup("germoney", 5) {
//!     println!("{} ({:.3})", synth.kg.label(hit.entity), hit.score);
//! }
//! ```

#![warn(missing_docs)]

pub use emblookup_ann as ann;
pub use emblookup_baselines as baselines;
pub use emblookup_core as core;
pub use emblookup_embed as embed;
pub use emblookup_kg as kg;
pub use emblookup_obs as obs;
pub use emblookup_semtab as semtab;
pub use emblookup_serve as serve;
pub use emblookup_tensor as tensor;
pub use emblookup_text as text;

/// The names almost every user of the library needs.
pub mod prelude {
    pub use emblookup_core::{Compression, EmbLookup, EmbLookupConfig};
    pub use emblookup_kg::{
        generate, Candidate, EntityId, KnowledgeGraph, LookupService, SynthKgConfig,
    };
    pub use emblookup_semtab::{
        generate_dataset, run_cea, run_cta, DatasetConfig, Task, TaskReport,
    };
}
