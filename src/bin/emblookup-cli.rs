//! Command-line interface for the EmbLookup library.
//!
//! ```text
//! emblookup-cli generate --out kg.bin [--entities 600] [--seed 42]
//! emblookup-cli train    --kg kg.bin --out model.bin [--epochs 16] [--seed 42]
//! emblookup-cli lookup   --kg kg.bin --model model.bin --query "germoney" [--k 10]
//! emblookup-cli serve    --kg kg.bin [--model model.bin] [--addr 127.0.0.1:7878]
//! emblookup-cli query    --addr 127.0.0.1:7878 --query "germoney" [--k 10]
//! emblookup-cli stats    --kg kg.bin
//! emblookup-cli trace    --addr 127.0.0.1:7878 [--id <hex>] [--chrome]
//! ```
//!
//! `trace` talks to the serve layer's flight recorder (DESIGN.md §9):
//! without flags it lists retained + recent traces, `--id` pretty-prints
//! one span tree, and `--chrome` dumps Chrome `trace_event` JSON that
//! loads in `about:tracing` or <https://ui.perfetto.dev>.

use emblookup::core::{EmbLookup, EmbLookupConfig, EmbLookupModel};
use emblookup::kg::{generate, kg_from_bytes, kg_to_bytes, LookupService, SynthKgConfig};
use emblookup::serve::json::{self, Json};
use emblookup::serve::{client, ServeConfig, Server};
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    // EMBLOOKUP_OBS=stderr / EMBLOOKUP_OBS_JSON=<path> stream stage events
    emblookup::obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "train" => cmd_train(&args[1..]),
        "lookup" => cmd_lookup(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
EmbLookup — embedding-based entity lookup for knowledge graphs

USAGE:
  emblookup-cli generate --out <kg.bin> [--entities N] [--seed S]
  emblookup-cli train    --kg <kg.bin> --out <model.bin> [--epochs E] [--triplets T] [--seed S]
  emblookup-cli lookup   --kg <kg.bin> --model <model.bin> --query <text> [--k K]
  emblookup-cli serve    --kg <kg.bin> [--model <model.bin>] [--addr A] [--workers N]
                         [--queue-cap N] [--deadline-ms D] [--seed S] [--shards N]
  emblookup-cli query    --addr <host:port> --query <text> [--k K] [--deadline-ms D]
                         [--repeat N]
  emblookup-cli stats    --kg <kg.bin>
  emblookup-cli trace    --addr <host:port> [--id <hex>] [--chrome]";

/// Reads `--name value` style flags.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn required(args: &[String], name: &str) -> Result<String, String> {
    flag(args, name).ok_or_else(|| format!("missing required flag {name}"))
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value for {name}: {v:?}")),
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let out = required(args, "--out")?;
    let entities: usize = parsed(args, "--entities", 600)?;
    let seed: u64 = parsed(args, "--seed", 42)?;
    // scale the small preset proportionally
    let base = SynthKgConfig::small(seed);
    let scale = (entities as f64 / base.total_entities() as f64).max(0.05);
    let config = SynthKgConfig {
        countries: ((base.countries as f64 * scale) as usize).max(2),
        cities: ((base.cities as f64 * scale) as usize).max(5),
        persons: ((base.persons as f64 * scale) as usize).max(5),
        organizations: ((base.organizations as f64 * scale) as usize).max(2),
        films: ((base.films as f64 * scale) as usize).max(2),
        ..base
    };
    let synth = generate(config);
    std::fs::write(&out, kg_to_bytes(&synth.kg)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} entities, {} facts)",
        out,
        synth.kg.num_entities(),
        synth.kg.num_facts()
    );
    Ok(())
}

fn load_kg(args: &[String]) -> Result<emblookup::kg::KnowledgeGraph, String> {
    let path = required(args, "--kg")?;
    let bytes = std::fs::read(&path).map_err(|e| format!("{path}: {e}"))?;
    kg_from_bytes(&bytes)
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let kg = load_kg(args)?;
    let out = required(args, "--out")?;
    let seed: u64 = parsed(args, "--seed", 42)?;
    let mut config = EmbLookupConfig::fast(seed);
    config.epochs = parsed(args, "--epochs", config.epochs)?;
    config.triplets_per_entity = parsed(args, "--triplets", config.triplets_per_entity)?;
    println!(
        "training on {} entities ({} epochs, {} triplets/entity)…",
        kg.num_entities(),
        config.epochs,
        config.triplets_per_entity
    );
    let service = EmbLookup::train_on(&kg, config);
    println!("final loss {:.4}", service.report().final_loss());
    std::fs::write(&out, service.model().to_bytes()).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_lookup(args: &[String]) -> Result<(), String> {
    let kg = load_kg(args)?;
    let model_path = required(args, "--model")?;
    let query = required(args, "--query")?;
    let k: usize = parsed(args, "--k", 10)?;
    let seed: u64 = parsed(args, "--seed", 42)?;
    let bytes = std::fs::read(&model_path).map_err(|e| format!("{model_path}: {e}"))?;
    let model = EmbLookupModel::from_bytes(&bytes, EmbLookupConfig::fast(seed))?;
    let service = EmbLookup::from_model(Arc::new(model), &kg, emblookup::core::Compression::default_pq());
    for (rank, c) in service.lookup(&query, k).iter().enumerate() {
        println!("{:>2}. {:<32} {:.4}", rank + 1, kg.label(c.entity), c.score);
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let kg = load_kg(args)?;
    let seed: u64 = parsed(args, "--seed", 42)?;
    let service = match flag(args, "--model") {
        Some(model_path) => {
            let bytes = std::fs::read(&model_path).map_err(|e| format!("{model_path}: {e}"))?;
            let model = EmbLookupModel::from_bytes(&bytes, EmbLookupConfig::fast(seed))?;
            EmbLookup::from_model(Arc::new(model), &kg, emblookup::core::Compression::default_pq())
        }
        None => {
            println!("no --model given; training on {} entities…", kg.num_entities());
            EmbLookup::try_train_on(&kg, EmbLookupConfig::fast(seed)).map_err(|e| e.to_string())?
        }
    };
    let config = ServeConfig {
        addr: flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        workers: parsed(args, "--workers", 0)?,
        queue_cap: parsed(args, "--queue-cap", 64)?,
        default_deadline_ms: parsed(args, "--deadline-ms", 250)?,
        shards: parsed(args, "--shards", 1)?,
        ..ServeConfig::default()
    };
    let shards = config.shards;
    let server = Server::start(service, &kg, config).map_err(|e| e.to_string())?;
    println!("serving on http://{} ({} shard(s))", server.addr(), shards.max(1));
    println!("  POST /lookup        {{\"q\": \"...\", \"k\": 10}}");
    println!("  POST /lookup/bulk   {{\"queries\": [\"...\"], \"k\": 10}}");
    println!("  GET  /healthz | /metrics");
    // Serve until the process is killed; the accept loop owns the pool.
    loop {
        std::thread::park();
    }
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let addr = required(args, "--addr")?;
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| format!("invalid --addr {addr:?} (expected host:port)"))?;
    let query = required(args, "--query")?;
    let k: usize = parsed(args, "--k", 10)?;
    let body = format!(
        "{{\"q\":\"{}\",\"k\":{}}}",
        emblookup::serve::json::escape(&query),
        k
    );
    let headers: Vec<(String, String)> = match flag(args, "--deadline-ms") {
        Some(ms) => vec![("x-emblookup-deadline-ms".to_string(), ms)],
        None => Vec::new(),
    };
    let header_refs: Vec<(&str, &str)> = headers
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_str()))
        .collect();
    let repeat: usize = parsed(args, "--repeat", 1)?;
    if repeat > 1 {
        return query_repeat(addr, &body, &header_refs, repeat);
    }
    let resp = client::post_json(addr, "/lookup", &body, &header_refs)
        .map_err(|e| format!("request failed: {e}"))?;
    println!("HTTP {}", resp.status);
    println!("{}", resp.body);
    if resp.status == 200 {
        Ok(())
    } else {
        Err(format!("server answered {}", resp.status))
    }
}

/// Bulk query loop over one keep-alive connection: the whole point of
/// persistent connections is paying connect cost once, so the report
/// separates per-connection setup time from per-request latency.
fn query_repeat(
    addr: std::net::SocketAddr,
    body: &str,
    headers: &[(&str, &str)],
    repeat: usize,
) -> Result<(), String> {
    let t0 = std::time::Instant::now();
    let mut conn = client::Connection::open(addr).map_err(|e| format!("connect failed: {e}"))?;
    let connect_us = t0.elapsed().as_micros();
    let mut lat_us: Vec<u128> = Vec::with_capacity(repeat);
    let mut ok = 0usize;
    let mut last_status = 0u16;
    for _ in 0..repeat {
        let t = std::time::Instant::now();
        let resp = conn
            .post_json("/lookup", body, headers)
            .map_err(|e| format!("request failed: {e}"))?;
        lat_us.push(t.elapsed().as_micros());
        last_status = resp.status;
        if resp.status == 200 {
            ok += 1;
        }
    }
    lat_us.sort_unstable();
    let pct = |q: f64| lat_us[((lat_us.len() - 1) as f64 * q) as usize];
    println!("{repeat} requests over one keep-alive connection: {ok} ok");
    println!("  per-connection: connect {connect_us}us (paid once)");
    println!(
        "  per-request:    p50 {}us  p99 {}us  max {}us",
        pct(0.50),
        pct(0.99),
        lat_us[lat_us.len() - 1]
    );
    if ok == repeat {
        Ok(())
    } else {
        Err(format!("{} request(s) failed (last status {last_status})", repeat - ok))
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let kg = load_kg(args)?;
    println!("entities:   {}", kg.num_entities());
    println!("types:      {}", kg.num_types());
    println!("properties: {}", kg.num_properties());
    println!("facts:      {}", kg.num_facts());
    let aliases: usize = kg.entities().map(|e| e.aliases.len()).sum();
    println!("aliases:    {aliases}");
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let addr = required(args, "--addr")?;
    let addr = resolve(&addr).ok_or_else(|| format!("cannot resolve address {addr:?}"))?;
    let id = flag(args, "--id");
    let chrome = args.iter().any(|a| a == "--chrome");
    let path = match (&id, chrome) {
        (Some(id), _) => format!("/debug/traces/{id}"),
        (None, true) => "/debug/traces/chrome".to_string(),
        (None, false) => "/debug/traces".to_string(),
    };
    let resp = client::get(addr, &path).map_err(|e| format!("GET {path} failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("GET {path} returned {}: {}", resp.status, resp.body));
    }
    if chrome && id.is_none() {
        // Raw pass-through: the bytes are the artifact.
        println!("{}", resp.body);
        return Ok(());
    }
    let parsed = json::parse(&resp.body).map_err(|e| format!("unparseable response: {e}"))?;
    if id.is_some() {
        print_retained(&parsed);
    } else {
        print_listing(&parsed);
    }
    Ok(())
}

fn resolve(addr: &str) -> Option<SocketAddr> {
    addr.to_socket_addrs().ok()?.next()
}

/// `{"retained":[…],"recent":[…]}` → a human summary.
fn print_listing(listing: &Json) {
    let retained = listing.get("retained").and_then(Json::as_arr).unwrap_or(&[]);
    println!("retained traces ({}):", retained.len());
    for entry in retained {
        let triggers: Vec<&str> = entry
            .get("triggers")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(Json::as_str)
            .collect();
        if let Some(trace) = entry.get("trace") {
            let id = trace.get("trace_id").and_then(Json::as_str).unwrap_or("?");
            let dur = trace.get("duration_ns").and_then(Json::as_u64).unwrap_or(0);
            let spans = trace.get("spans").and_then(Json::as_arr).map_or(0, <[Json]>::len);
            println!(
                "  {id}  {:>10}  {spans:>3} spans  [{}]",
                fmt_ns(dur),
                triggers.join(",")
            );
        }
    }
    let recent: Vec<&str> = listing
        .get("recent")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(Json::as_str)
        .collect();
    println!("recent trace ids in the ring ({}):", recent.len());
    for id in recent {
        println!("  {id}");
    }
    println!("\nfetch one with: emblookup-cli trace --addr <host:port> --id <hex>");
}

/// `{"triggers":[…],"trace":{…}}` → the span tree, indented by depth.
fn print_retained(entry: &Json) {
    let triggers: Vec<&str> = entry
        .get("triggers")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(Json::as_str)
        .collect();
    let Some(trace) = entry.get("trace") else {
        println!("(no trace body)");
        return;
    };
    let id = trace.get("trace_id").and_then(Json::as_str).unwrap_or("?");
    let dur = trace.get("duration_ns").and_then(Json::as_u64).unwrap_or(0);
    println!("trace {id}  total {}  triggers [{}]", fmt_ns(dur), triggers.join(","));
    let spans = trace.get("spans").and_then(Json::as_arr).unwrap_or(&[]);
    // Spans arrive in creation order with parent ids, so one pass per
    // subtree suffices; trees are a handful of spans deep.
    print_children(spans, 0, 0);
}

fn print_children(spans: &[Json], parent: u64, depth: usize) {
    for span in spans {
        if span.get("parent").and_then(Json::as_u64) != Some(parent) {
            continue;
        }
        let id = span.get("id").and_then(Json::as_u64).unwrap_or(0);
        let name = span.get("name").and_then(Json::as_str).unwrap_or("?");
        let dur = span.get("dur_ns").and_then(Json::as_u64).unwrap_or(0);
        let self_ns = span.get("self_ns").and_then(Json::as_u64).unwrap_or(0);
        let thread = span.get("thread").and_then(Json::as_u64).unwrap_or(0);
        let annos = span.get("annotations").map_or(String::new(), fmt_annotations);
        println!(
            "{:indent$}{name}  dur {}  self {}  thread {thread}{annos}",
            "",
            fmt_ns(dur),
            fmt_ns(self_ns),
            indent = 2 + depth * 2,
        );
        print_children(spans, id, depth + 1);
    }
}

fn fmt_annotations(annotations: &Json) -> String {
    let Json::Obj(members) = annotations else {
        return String::new();
    };
    if members.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = members
        .iter()
        .map(|(k, v)| match v {
            Json::Str(s) => format!("{k}={s}"),
            Json::Num(n) => format!("{k}={n}"),
            other => format!("{k}={other:?}"),
        })
        .collect();
    format!("  {{{}}}", parts.join(" "))
}

/// Nanoseconds as a compact human duration.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}
