//! Command-line interface for the EmbLookup library.
//!
//! ```text
//! emblookup-cli generate --out kg.bin [--entities 600] [--seed 42]
//! emblookup-cli train    --kg kg.bin --out model.bin [--epochs 16] [--seed 42]
//! emblookup-cli lookup   --kg kg.bin --model model.bin --query "germoney" [--k 10]
//! emblookup-cli serve    --kg kg.bin [--model model.bin] [--addr 127.0.0.1:7878]
//! emblookup-cli query    --addr 127.0.0.1:7878 --query "germoney" [--k 10]
//! emblookup-cli stats    --kg kg.bin
//! ```

use emblookup::core::{EmbLookup, EmbLookupConfig, EmbLookupModel};
use emblookup::kg::{generate, kg_from_bytes, kg_to_bytes, LookupService, SynthKgConfig};
use emblookup::serve::{client, ServeConfig, Server};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    // EMBLOOKUP_OBS=stderr / EMBLOOKUP_OBS_JSON=<path> stream stage events
    emblookup::obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "train" => cmd_train(&args[1..]),
        "lookup" => cmd_lookup(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
EmbLookup — embedding-based entity lookup for knowledge graphs

USAGE:
  emblookup-cli generate --out <kg.bin> [--entities N] [--seed S]
  emblookup-cli train    --kg <kg.bin> --out <model.bin> [--epochs E] [--triplets T] [--seed S]
  emblookup-cli lookup   --kg <kg.bin> --model <model.bin> --query <text> [--k K]
  emblookup-cli serve    --kg <kg.bin> [--model <model.bin>] [--addr A] [--workers N]
                         [--queue-cap N] [--deadline-ms D] [--seed S]
  emblookup-cli query    --addr <host:port> --query <text> [--k K] [--deadline-ms D]
  emblookup-cli stats    --kg <kg.bin>";

/// Reads `--name value` style flags.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn required(args: &[String], name: &str) -> Result<String, String> {
    flag(args, name).ok_or_else(|| format!("missing required flag {name}"))
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value for {name}: {v:?}")),
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let out = required(args, "--out")?;
    let entities: usize = parsed(args, "--entities", 600)?;
    let seed: u64 = parsed(args, "--seed", 42)?;
    // scale the small preset proportionally
    let base = SynthKgConfig::small(seed);
    let scale = (entities as f64 / base.total_entities() as f64).max(0.05);
    let config = SynthKgConfig {
        countries: ((base.countries as f64 * scale) as usize).max(2),
        cities: ((base.cities as f64 * scale) as usize).max(5),
        persons: ((base.persons as f64 * scale) as usize).max(5),
        organizations: ((base.organizations as f64 * scale) as usize).max(2),
        films: ((base.films as f64 * scale) as usize).max(2),
        ..base
    };
    let synth = generate(config);
    std::fs::write(&out, kg_to_bytes(&synth.kg)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} entities, {} facts)",
        out,
        synth.kg.num_entities(),
        synth.kg.num_facts()
    );
    Ok(())
}

fn load_kg(args: &[String]) -> Result<emblookup::kg::KnowledgeGraph, String> {
    let path = required(args, "--kg")?;
    let bytes = std::fs::read(&path).map_err(|e| format!("{path}: {e}"))?;
    kg_from_bytes(&bytes)
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let kg = load_kg(args)?;
    let out = required(args, "--out")?;
    let seed: u64 = parsed(args, "--seed", 42)?;
    let mut config = EmbLookupConfig::fast(seed);
    config.epochs = parsed(args, "--epochs", config.epochs)?;
    config.triplets_per_entity = parsed(args, "--triplets", config.triplets_per_entity)?;
    println!(
        "training on {} entities ({} epochs, {} triplets/entity)…",
        kg.num_entities(),
        config.epochs,
        config.triplets_per_entity
    );
    let service = EmbLookup::train_on(&kg, config);
    println!("final loss {:.4}", service.report().final_loss());
    std::fs::write(&out, service.model().to_bytes()).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_lookup(args: &[String]) -> Result<(), String> {
    let kg = load_kg(args)?;
    let model_path = required(args, "--model")?;
    let query = required(args, "--query")?;
    let k: usize = parsed(args, "--k", 10)?;
    let seed: u64 = parsed(args, "--seed", 42)?;
    let bytes = std::fs::read(&model_path).map_err(|e| format!("{model_path}: {e}"))?;
    let model = EmbLookupModel::from_bytes(&bytes, EmbLookupConfig::fast(seed))?;
    let service = EmbLookup::from_model(Arc::new(model), &kg, emblookup::core::Compression::default_pq());
    for (rank, c) in service.lookup(&query, k).iter().enumerate() {
        println!("{:>2}. {:<32} {:.4}", rank + 1, kg.label(c.entity), c.score);
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let kg = load_kg(args)?;
    let seed: u64 = parsed(args, "--seed", 42)?;
    let service = match flag(args, "--model") {
        Some(model_path) => {
            let bytes = std::fs::read(&model_path).map_err(|e| format!("{model_path}: {e}"))?;
            let model = EmbLookupModel::from_bytes(&bytes, EmbLookupConfig::fast(seed))?;
            EmbLookup::from_model(Arc::new(model), &kg, emblookup::core::Compression::default_pq())
        }
        None => {
            println!("no --model given; training on {} entities…", kg.num_entities());
            EmbLookup::try_train_on(&kg, EmbLookupConfig::fast(seed)).map_err(|e| e.to_string())?
        }
    };
    let config = ServeConfig {
        addr: flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        workers: parsed(args, "--workers", 0)?,
        queue_cap: parsed(args, "--queue-cap", 64)?,
        default_deadline_ms: parsed(args, "--deadline-ms", 250)?,
        ..ServeConfig::default()
    };
    let server = Server::start(service, &kg, config).map_err(|e| e.to_string())?;
    println!("serving on http://{}", server.addr());
    println!("  POST /lookup        {{\"q\": \"...\", \"k\": 10}}");
    println!("  POST /lookup/bulk   {{\"queries\": [\"...\"], \"k\": 10}}");
    println!("  GET  /healthz | /metrics");
    // Serve until the process is killed; the accept loop owns the pool.
    loop {
        std::thread::park();
    }
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let addr = required(args, "--addr")?;
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| format!("invalid --addr {addr:?} (expected host:port)"))?;
    let query = required(args, "--query")?;
    let k: usize = parsed(args, "--k", 10)?;
    let body = format!(
        "{{\"q\":\"{}\",\"k\":{}}}",
        emblookup::serve::json::escape(&query),
        k
    );
    let headers: Vec<(String, String)> = match flag(args, "--deadline-ms") {
        Some(ms) => vec![("x-emblookup-deadline-ms".to_string(), ms)],
        None => Vec::new(),
    };
    let header_refs: Vec<(&str, &str)> = headers
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_str()))
        .collect();
    let resp = client::post_json(addr, "/lookup", &body, &header_refs)
        .map_err(|e| format!("request failed: {e}"))?;
    println!("HTTP {}", resp.status);
    println!("{}", resp.body);
    if resp.status == 200 {
        Ok(())
    } else {
        Err(format!("server answered {}", resp.status))
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let kg = load_kg(args)?;
    println!("entities:   {}", kg.num_entities());
    println!("types:      {}", kg.num_types());
    println!("properties: {}", kg.num_properties());
    println!("facts:      {}", kg.num_facts());
    let aliases: usize = kg.entities().map(|e| e.aliases.len()).sum();
    println!("aliases:    {aliases}");
    Ok(())
}
